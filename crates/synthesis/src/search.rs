//! Structure search: find the shortest SU(4)-block circuit approximating a
//! small unitary within "numerically exact" precision (paper §5.1.1).
//!
//! Structures are enumerated by increasing block count; candidate pair
//! sequences avoid immediate repeats (two consecutive blocks on the same
//! pair fuse into one, so such sequences are redundant). The first
//! structure that instantiates below the precision threshold wins.

// lint:allow-file(tolerance-literal, search pruning threshold local to synthesis)
use crate::sweep::{instantiate, BlockCircuit, Structure, SweepOptions};
use reqisc_qmath::CMat;

/// Options for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Largest block count to try.
    pub max_blocks: usize,
    /// Success threshold on process infidelity (the paper treats
    /// `≤ 1e-10` as exact for practical purposes).
    pub threshold: f64,
    /// Sweep options for each instantiation attempt.
    pub sweep: SweepOptions,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self { max_blocks: 7, threshold: 1e-9, sweep: SweepOptions::default() }
    }
}

impl SearchOptions {
    /// Content fingerprint of the full search budget. Memoized synthesis
    /// results are only valid for the exact options that produced them
    /// (a different sweep budget or seed converges to a different block
    /// sequence), so cache keys must include this.
    pub fn fingerprint(&self) -> u128 {
        let mut h = reqisc_qmath::Fnv128::new();
        h.write_usize(self.max_blocks);
        h.write_f64(self.threshold);
        h.write_usize(self.sweep.max_sweeps);
        h.write_f64(self.sweep.target_infidelity);
        h.write_usize(self.sweep.restarts);
        h.write_u64(self.sweep.seed);
        h.finish()
    }
}

/// The paper's SU(4) lower bound `b_SU(4)(n) = ⌈(4^n − 3n − 1)/9⌉`
/// (§5.1.1).
pub fn su4_lower_bound(n: usize) -> usize {
    let num = 4usize.pow(n as u32) - 3 * n - 1;
    num.div_ceil(9)
}

/// The CNOT lower bound `b_CNOT(n) = ⌈(4^n − 3n − 1)/4⌉` (§5.1.1).
pub fn cnot_lower_bound(n: usize) -> usize {
    let num = 4usize.pow(n as u32) - 3 * n - 1;
    num.div_ceil(4)
}

/// All qubit pairs of an `n`-qubit register.
pub fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            v.push((a, b));
        }
    }
    v
}

/// Enumerates pair sequences of length `m` with no immediate repetition.
pub fn structures(n: usize, m: usize) -> Vec<Structure> {
    let pairs = all_pairs(n);
    let mut out: Vec<Structure> = vec![Vec::new()];
    for _ in 0..m {
        let mut next = Vec::new();
        for s in &out {
            for &p in &pairs {
                if s.last() != Some(&p) {
                    let mut s2 = s.clone();
                    s2.push(p);
                    next.push(s2);
                }
            }
        }
        out = next;
    }
    out
}

/// Searches for the shortest SU(4)-block realization of `target`.
///
/// Returns `None` when no structure up to `opts.max_blocks` reaches the
/// threshold (callers then keep the unsynthesized form).
///
/// # Panics
///
/// Panics if `target` is not `2^num_qubits`-dimensional.
pub fn synthesize(target: &CMat, num_qubits: usize, opts: &SearchOptions) -> Option<BlockCircuit> {
    assert_eq!(target.rows(), 1 << num_qubits, "target dimension mismatch");
    // Zero blocks: is the target (numerically) the identity up to phase?
    let dim = target.rows() as f64;
    if (1.0 - target.trace().abs() / dim) < opts.threshold {
        return Some(BlockCircuit { num_qubits, blocks: Vec::new() });
    }
    // Two-stage budget: a cheap probe filters infeasible structures (the
    // vast majority at small block counts), and only near-converged
    // candidates get the full sweep budget.
    let probe = SweepOptions {
        max_sweeps: 80,
        target_infidelity: opts.threshold,
        restarts: 1,
        seed: opts.sweep.seed,
    };
    for m in 1..=opts.max_blocks {
        let mut best: Option<BlockCircuit> = None;
        let mut best_inf = f64::INFINITY;
        for s in structures(num_qubits, m) {
            let r = instantiate(target, &s, num_qubits, &probe);
            let r = if r.infidelity > opts.threshold && r.infidelity < 1e-3 {
                instantiate(target, &s, num_qubits, &opts.sweep)
            } else {
                r
            };
            if r.infidelity < best_inf {
                best_inf = r.infidelity;
                best = Some(r.circuit);
            }
            if best_inf <= opts.threshold {
                break;
            }
        }
        if best_inf <= opts.threshold {
            return best;
        }
    }
    None
}

/// Like [`synthesize`] but only accepts results strictly shorter than
/// `current_count`; used by hierarchical synthesis where re-synthesis must
/// pay off (paper §5.1.2, threshold `m_th`).
pub fn synthesize_if_shorter(
    target: &CMat,
    num_qubits: usize,
    current_count: usize,
    opts: &SearchOptions,
) -> Option<BlockCircuit> {
    let mut o = opts.clone();
    o.max_blocks = o.max_blocks.min(current_count.saturating_sub(1));
    if o.max_blocks == 0 && current_count > 0 {
        return None;
    }
    synthesize(target, num_qubits, &o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reqisc_qcircuit::{embed, Circuit, Gate};
    use reqisc_qmath::haar_unitary;

    #[test]
    fn lower_bounds_match_paper() {
        // §5.1.1: b_SU4(3) = 6, b_SU4(4) = 27; CNOT bound: (4^n-3n-1)/4.
        assert_eq!(su4_lower_bound(2), 1);
        assert_eq!(su4_lower_bound(3), 6);
        assert_eq!(su4_lower_bound(4), 27);
        assert_eq!(cnot_lower_bound(2), 3);
        assert_eq!(cnot_lower_bound(3), 14);
    }

    #[test]
    fn structure_enumeration_counts() {
        // 3 qubits, no immediate repeats: 3·2^{m-1}.
        assert_eq!(structures(3, 1).len(), 3);
        assert_eq!(structures(3, 2).len(), 6);
        assert_eq!(structures(3, 3).len(), 12);
        assert_eq!(all_pairs(4).len(), 6);
    }

    #[test]
    fn identity_needs_zero_blocks() {
        let c = synthesize(&CMat::identity(8), 3, &SearchOptions::default()).unwrap();
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn single_su4_target_found_with_one_block() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = haar_unitary(4, &mut rng);
        let target = embed(&g, &[0, 2], 3);
        let c = synthesize(&target, 3, &SearchOptions::default()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.infidelity(&target) < 1e-9);
    }

    #[test]
    fn ccx_synthesizes_below_cnot_cost() {
        // Toffoli: 6 CNOTs conventionally; arbitrary SU(4) blocks need ≤ 5
        // (the paper's template-based synthesis exploits exactly this).
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        let target = c.unitary();
        let syn = synthesize(&target, 3, &SearchOptions::default()).expect("ccx synthesizable");
        assert!(syn.len() <= 5, "CCX took {} blocks", syn.len());
        assert!(syn.infidelity(&target) < 1e-9);
    }

    #[test]
    fn synthesize_if_shorter_rejects_no_gain() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = haar_unitary(4, &mut rng);
        let target = embed(&g, &[0, 1], 3);
        // Current count 1: must return None (cannot do better than 1).
        assert!(synthesize_if_shorter(&target, 3, 1, &SearchOptions::default()).is_none());
        // Current count 2: finds the 1-block realization.
        let c = synthesize_if_shorter(&target, 3, 2, &SearchOptions::default()).unwrap();
        assert_eq!(c.len(), 1);
    }
}
