#![warn(missing_docs)]
//! # reqisc-synthesis
//!
//! Approximate (numerically exact) synthesis of small unitaries into
//! sequences of arbitrary SU(4) blocks — the engine behind the Regulus
//! compiler's hierarchical synthesis (paper §5.1) and template-based
//! synthesis (§5.2).
//!
//! * [`sweep`] — closed-form environment sweeps that instantiate a fixed
//!   block structure to machine precision.
//! * [`search`] — shortest-structure search with the paper's SU(4)/CNOT
//!   resource lower bounds.
//! * [`templates`] — the pre-synthesized 3Q IR library (CCX, Peres,
//!   MAJ/UMA, CSWAP) with ECC variants.
//!
//! ## Quick start
//!
//! ```no_run
//! use reqisc_qcircuit::{Circuit, Gate};
//! use reqisc_synthesis::{synthesize, SearchOptions};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::Ccx(0, 1, 2));
//! let blocks = synthesize(&c.unitary(), 3, &SearchOptions::default()).unwrap();
//! assert!(blocks.len() <= 5); // vs 6 CNOTs conventionally
//! ```

pub mod basis;
pub mod search;
pub mod skeleton;
pub mod sweep;
pub mod templates;

pub use basis::{synthesize_with_basis, BasisDecomposition};
pub use search::{
    all_pairs, cnot_lower_bound, structures, su4_lower_bound, synthesize, synthesize_if_shorter,
    SearchOptions,
};
pub use sweep::{instantiate, BlockCircuit, Structure, SweepOptions, SweepResult};
pub use templates::{builtin_irs, template_matches, IrEntry, Template, TemplateLibrary};
pub use skeleton::{
    instantiate_skeleton, min_cnots, synthesize_to_cnots, SkeletonResult, Slot,
};
