//! The benchmark suite: 132 programs across the 17 categories of Table 1.
//!
//! Two scales are provided: [`Scale::Demo`] keeps every program small
//! enough for full pipelines to run in seconds-to-minutes (the default for
//! the bench binaries and tests), while [`Scale::Paper`] matches the size
//! ranges of Table 1 (the paper's own full run takes hours).

use crate::category::{Category, ALL_CATEGORIES};
use crate::generators as g;
use reqisc_qcircuit::Circuit;

/// Suite scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances (CI-friendly).
    Demo,
    /// Table-1-range instances.
    Paper,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Program name, e.g. `qft_8`.
    pub name: String,
    /// Its category.
    pub category: Category,
    /// The high-level circuit (CCX/MCX/Rzz-level IR).
    pub circuit: Circuit,
}

impl Benchmark {
    fn new(name: impl Into<String>, category: Category, circuit: Circuit) -> Self {
        Self { name: name.into(), category, circuit }
    }
}

/// Builds all programs of one category.
pub fn category_programs(cat: Category, scale: Scale) -> Vec<Benchmark> {
    let big = scale == Scale::Paper;
    let mut v = Vec::new();
    match cat {
        Category::Alu => {
            for k in 0..12u64 {
                v.push(Benchmark::new(format!("alu_v{k}"), cat, g::alu(k)));
            }
        }
        Category::BitAdder => {
            let sizes: &[usize] = if big {
                &[1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5]
            } else {
                &[1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4]
            };
            for (i, &b) in sizes.iter().enumerate() {
                v.push(Benchmark::new(format!("bit_adder_{i}"), cat, g::bit_adder(b)));
            }
        }
        Category::Comparator => {
            for i in 0..19usize {
                let bits = 2 + i % 2;
                let mut c = g::comparator(bits);
                // Variants: append a shifted second comparison round.
                for _ in 0..(i / 4) {
                    let extra = g::comparator(bits);
                    c.extend(&extra);
                }
                v.push(Benchmark::new(format!("comparator_{i}"), cat, c));
            }
        }
        Category::Encoding => {
            for i in 0..9usize {
                let n = 3 + i;
                let depth = if big { 4 + i } else { 2 + i / 2 };
                v.push(Benchmark::new(
                    format!("encoding_{i}"),
                    cat,
                    g::encoding(n.min(10), depth, i as u64),
                ));
            }
        }
        Category::Grover => {
            let (n, it) = if big { (5, 4) } else { (4, 2) };
            v.push(Benchmark::new("grover_5", cat, g::grover(n, it)));
        }
        Category::Hwb => {
            for i in 0..12usize {
                let n = 4 + i % 4;
                let scale_f = if big { 3 } else { 1 };
                v.push(Benchmark::new(
                    format!("hwb_{i}"),
                    cat,
                    g::reversible_network(n, (6 + 3 * i) * scale_f, 100 + i as u64),
                ));
            }
        }
        Category::Modulo => {
            for i in 0..8usize {
                v.push(Benchmark::new(format!("modulo_{i}"), cat, g::modulo(2 + i % 2, i as u64)));
            }
        }
        Category::Mult => {
            let sizes: &[usize] = if big { &[3, 4, 5] } else { &[2, 2, 3] };
            for (i, &b) in sizes.iter().enumerate() {
                v.push(Benchmark::new(format!("mult_{i}"), cat, g::mult(b)));
            }
        }
        Category::Pf => {
            for i in 0..9usize {
                let n = 4 + i % 4;
                let steps = if big { 6 + i } else { 2 + i % 3 };
                v.push(Benchmark::new(format!("pf_{i}"), cat, g::pf(n, steps, i as u64)));
            }
        }
        Category::Qaoa => {
            for i in 0..9usize {
                let n = if big { 8 + 2 * (i % 5) } else { 5 + i % 3 };
                let layers = if big { 2 + i % 3 } else { 1 + i % 2 };
                v.push(Benchmark::new(format!("qaoa_{i}"), cat, g::qaoa(n, layers, i as u64)));
            }
        }
        Category::Qft => {
            let sizes: &[usize] = if big { &[8, 16, 32] } else { &[4, 6, 8] };
            for &n in sizes {
                v.push(Benchmark::new(format!("qft_{n}"), cat, g::qft(n)));
            }
        }
        Category::RippleAdd => {
            let sizes: &[usize] = if big { &[5, 10, 20, 30] } else { &[2, 3, 4, 5] };
            for &b in sizes {
                v.push(Benchmark::new(format!("rip_add_{}", 2 * b + 2), cat, g::ripple_add(b)));
            }
        }
        Category::Square => {
            let sizes: &[usize] = if big { &[3, 4, 4] } else { &[2, 2, 3] };
            for (i, &b) in sizes.iter().enumerate() {
                v.push(Benchmark::new(format!("square_{i}"), cat, g::square(b)));
            }
        }
        Category::Sym => {
            for i in 0..6usize {
                let inputs = if big { 6 + i } else { 4 + i % 3 };
                v.push(Benchmark::new(format!("sym_{i}"), cat, g::sym(inputs, i as u64)));
            }
        }
        Category::Tof => {
            let sizes: &[usize] = if big { &[3, 5, 7, 10] } else { &[3, 4, 5, 6] };
            for &k in sizes {
                v.push(Benchmark::new(format!("tof_{k}"), cat, g::tof_ladder(k)));
            }
        }
        Category::Uccsd => {
            for i in 0..14usize {
                let n = if big { 8 + 2 * (i % 4) } else { 4 + 2 * (i % 2) };
                let reps = 1 + usize::from(big && i % 5 == 0);
                v.push(Benchmark::new(format!("uccsd_{i}"), cat, g::uccsd(n, reps, i as u64)));
            }
        }
        Category::Urf => {
            let sizes: &[usize] = if big { &[3000, 5000, 8000] } else { &[120, 200, 320] };
            for (i, &gc) in sizes.iter().enumerate() {
                v.push(Benchmark::new(format!("urf_{i}"), cat, g::urf(8 + i, gc, i as u64)));
            }
        }
    }
    v
}

/// The full 132-program suite.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    ALL_CATEGORIES
        .iter()
        .flat_map(|&c| category_programs(c, scale))
        .collect()
}

/// A small representative slice (one program per category) for tests and
/// quick runs.
pub fn mini_suite() -> Vec<Benchmark> {
    ALL_CATEGORIES
        .iter()
        .map(|&c| category_programs(c, Scale::Demo).into_iter().next().unwrap())
        .collect()
}

/// [`mini_suite`] restricted to programs of at most `max_qubits` qubits —
/// the slice dense-unitary verification can afford (state-vector checks
/// are `O(4ⁿ)`; integration tests cap at 8).
pub fn mini_suite_capped(max_qubits: usize) -> Vec<Benchmark> {
    mini_suite()
        .into_iter()
        .filter(|b| b.circuit.num_qubits() <= max_qubits)
        .collect()
}

/// Reads the suite scale from the [`reqisc_env::SCALE`] environment knob
/// (`paper` → [`Scale::Paper`], anything else → [`Scale::Demo`]).
pub fn scale_from_env() -> Scale {
    match reqisc_env::SCALE.var().as_deref() {
        Some("paper") => Scale::Paper,
        _ => Scale::Demo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_132_programs() {
        let s = suite(Scale::Demo);
        assert_eq!(s.len(), 132);
    }

    #[test]
    fn category_counts_match_table1() {
        let expect = [
            (Category::Alu, 12),
            (Category::BitAdder, 13),
            (Category::Comparator, 19),
            (Category::Encoding, 9),
            (Category::Grover, 1),
            (Category::Hwb, 12),
            (Category::Modulo, 8),
            (Category::Mult, 3),
            (Category::Pf, 9),
            (Category::Qaoa, 9),
            (Category::Qft, 3),
            (Category::RippleAdd, 4),
            (Category::Square, 3),
            (Category::Sym, 6),
            (Category::Tof, 4),
            (Category::Uccsd, 14),
            (Category::Urf, 3),
        ];
        for (c, n) in expect {
            assert_eq!(category_programs(c, Scale::Demo).len(), n, "{c}");
        }
    }

    #[test]
    fn names_are_unique() {
        let s = suite(Scale::Demo);
        let mut names: Vec<&str> = s.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn all_programs_nonempty_and_multi_qubit() {
        for b in suite(Scale::Demo) {
            assert!(!b.circuit.is_empty(), "{} empty", b.name);
            assert!(b.circuit.num_qubits() >= 2, "{} too narrow", b.name);
            assert!(b.circuit.lowered_to_cx().count_2q() > 0, "{} trivial", b.name);
        }
    }

    #[test]
    fn paper_scale_is_larger() {
        let d: usize = suite(Scale::Demo)
            .iter()
            .map(|b| b.circuit.lowered_to_cx().count_2q())
            .sum();
        let p: usize = suite(Scale::Paper)
            .iter()
            .map(|b| b.circuit.lowered_to_cx().count_2q())
            .sum();
        assert!(p > d);
    }

    #[test]
    fn mini_suite_one_per_category() {
        assert_eq!(mini_suite().len(), 17);
    }

    #[test]
    fn capped_mini_suite_respects_bound() {
        let capped = mini_suite_capped(8);
        assert!(!capped.is_empty());
        assert!(capped.iter().all(|b| b.circuit.num_qubits() <= 8));
        assert!(capped.len() <= mini_suite().len());
        // Programs are generated deterministically: repeated calls agree.
        let again = mini_suite_capped(8);
        for (a, b) in capped.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.circuit.content_hash(), b.circuit.content_hash());
        }
    }
}
