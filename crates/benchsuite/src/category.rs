//! The 17 benchmark categories of the paper's Table 1.

use std::fmt;

/// Benchmark program category (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Arithmetic-logic units (RevLib `alu-v*`).
    Alu,
    /// Carry-save / bitwise adders.
    BitAdder,
    /// Register comparators.
    Comparator,
    /// Encoder/decoder networks.
    Encoding,
    /// Grover search.
    Grover,
    /// Hidden-weighted-bit functions.
    Hwb,
    /// Modular arithmetic.
    Modulo,
    /// Multipliers.
    Mult,
    /// Phase-polynomial / product-formula programs.
    Pf,
    /// QAOA MaxCut ansätze.
    Qaoa,
    /// Quantum Fourier transforms.
    Qft,
    /// Cuccaro ripple-carry adders.
    RippleAdd,
    /// Squaring circuits.
    Square,
    /// Symmetric-function benchmarks.
    Sym,
    /// Toffoli ladders.
    Tof,
    /// UCCSD ansätze.
    Uccsd,
    /// Unstructured reversible functions.
    Urf,
}

/// All categories in Table 1 order.
pub const ALL_CATEGORIES: [Category; 17] = [
    Category::Alu,
    Category::BitAdder,
    Category::Comparator,
    Category::Encoding,
    Category::Grover,
    Category::Hwb,
    Category::Modulo,
    Category::Mult,
    Category::Pf,
    Category::Qaoa,
    Category::Qft,
    Category::RippleAdd,
    Category::Square,
    Category::Sym,
    Category::Tof,
    Category::Uccsd,
    Category::Urf,
];

impl Category {
    /// Table-style lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Alu => "alu",
            Category::BitAdder => "bit_adder",
            Category::Comparator => "comparator",
            Category::Encoding => "encoding",
            Category::Grover => "grover",
            Category::Hwb => "hwb",
            Category::Modulo => "modulo",
            Category::Mult => "mult",
            Category::Pf => "pf",
            Category::Qaoa => "qaoa",
            Category::Qft => "qft",
            Category::RippleAdd => "ripple_add",
            Category::Square => "square",
            Category::Sym => "sym",
            Category::Tof => "tof",
            Category::Uccsd => "uccsd",
            Category::Urf => "urf",
        }
    }

    /// Program type in the paper's sense: Type-I solves classical problems
    /// via reversible logic; Type-II programs come from Hamiltonian
    /// simulation / variational ansätze (§5.2.1).
    pub fn is_type1(&self) -> bool {
        !matches!(self, Category::Pf | Category::Qaoa | Category::Uccsd)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_categories() {
        assert_eq!(ALL_CATEGORIES.len(), 17);
        let mut names: Vec<&str> = ALL_CATEGORIES.iter().map(Category::name).collect();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn type_split() {
        assert!(Category::Alu.is_type1());
        assert!(Category::Qft.is_type1());
        assert!(!Category::Qaoa.is_type1());
        assert!(!Category::Uccsd.is_type1());
        assert!(!Category::Pf.is_type1());
    }
}
