//! Deterministic benchmark-program generators.
//!
//! The paper's suite comes from RevLib / the TKet benchmarking repository;
//! these generators rebuild the same program *families* from their
//! published definitions (see DESIGN.md "Substitutions"). Every generator
//! is deterministic given its parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reqisc_qcircuit::{Circuit, Gate};
use std::f64::consts::PI;

/// Emits a controlled-phase `CP(θ)` on `(a, b)` as `Rz⊗Rz + Rzz` (exact up
/// to global phase).
fn push_cphase(c: &mut Circuit, a: usize, b: usize, theta: f64) {
    c.push(Gate::Rz(a, theta / 2.0));
    c.push(Gate::Rz(b, theta / 2.0));
    c.push(Gate::Rzz(a, b, -theta / 2.0));
}

/// Standard QFT on `n` qubits (with final bit-reversal swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H(i));
        for j in i + 1..n {
            push_cphase(&mut c, j, i, PI / (1 << (j - i)) as f64);
        }
    }
    for i in 0..n / 2 {
        c.push(Gate::Swap(i, n - 1 - i));
    }
    c
}

/// Cuccaro ripple-carry adder on two `bits`-bit registers plus carry-in
/// and carry-out: `2·bits + 2` qubits, built from the MAJ/UMA patterns the
/// template pass recognizes.
pub fn ripple_add(bits: usize) -> Circuit {
    // Layout: [cin, a0, b0, a1, b1, …, cout]
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n);
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = n - 1;
    // MAJ(x, y, z) = CX(z,y); CX(z,x); CCX(x,y,z) — carry ripples through a.
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.push(Gate::Cx(z, y));
        c.push(Gate::Cx(z, x));
        c.push(Gate::Ccx(x, y, z));
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.push(Gate::Ccx(x, y, z));
        c.push(Gate::Cx(z, x));
        c.push(Gate::Cx(x, y));
    };
    maj(&mut c, cin, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push(Gate::Cx(a(bits - 1), cout));
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Toffoli ladder (`tof_n` style): an n-controlled AND computed into a
/// target through a CCX ladder over clean ancillas (compute → target →
/// uncompute).
///
/// # Panics
///
/// Panics for fewer than 3 controls.
pub fn tof_ladder(n_controls: usize) -> Circuit {
    assert!(n_controls >= 3, "tof ladder needs ≥ 3 controls");
    let k = n_controls;
    // k controls, k-2 ancillas, 1 target.
    let n = 2 * k - 1;
    let mut c = Circuit::new(n);
    let anc = |i: usize| k + i;
    let target = n - 1;
    let up = |c: &mut Circuit| {
        c.push(Gate::Ccx(0, 1, anc(0)));
        for i in 2..k - 1 {
            c.push(Gate::Ccx(i, anc(i - 2), anc(i - 1)));
        }
    };
    up(&mut c);
    c.push(Gate::Ccx(k - 1, anc(k - 3), target));
    // Uncompute.
    for i in (2..k - 1).rev() {
        c.push(Gate::Ccx(i, anc(i - 2), anc(i - 1)));
    }
    c.push(Gate::Ccx(0, 1, anc(0)));
    c
}

/// Grover search with an MCX marking oracle and the standard diffuser.
pub fn grover(n_search: usize, iterations: usize) -> Circuit {
    // n_search search qubits + 1 target + (n_search-2) dirty ancillas.
    let anc = n_search.saturating_sub(2);
    let n = n_search + 1 + anc;
    let mut c = Circuit::new(n);
    let target = n_search;
    for q in 0..n_search {
        c.push(Gate::H(q));
    }
    c.push(Gate::X(target));
    c.push(Gate::H(target));
    let controls: Vec<usize> = (0..n_search).collect();
    for _ in 0..iterations {
        // Oracle: mark |11…1⟩.
        c.push(Gate::Mcx(controls.clone(), target));
        // Diffuser.
        for q in 0..n_search {
            c.push(Gate::H(q));
            c.push(Gate::X(q));
        }
        c.push(Gate::H(n_search - 1));
        c.push(Gate::Mcx((0..n_search - 1).collect(), n_search - 1));
        c.push(Gate::H(n_search - 1));
        for q in 0..n_search {
            c.push(Gate::X(q));
            c.push(Gate::H(q));
        }
    }
    c
}

/// QAOA MaxCut on a random 3-regular-ish graph: `layers` rounds of
/// `Rzz(edges)` + `Rx(all)`.
pub fn qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    // Build an (approximately) 3-regular connected graph.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let extra = n / 2;
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a.min(b), a.max(b)));
        }
    }
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for l in 0..layers {
        let gamma = 0.3 + 0.11 * l as f64;
        let beta = 0.7 - 0.07 * l as f64;
        for &(a, b) in &edges {
            c.push(Gate::Rzz(a, b, 2.0 * gamma));
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * beta));
        }
    }
    c
}

/// Emits `exp(-iθ/2 · P)` for a Pauli string `P` given as `(qubit, axis)`
/// pairs (axis: 0 = X, 1 = Y, 2 = Z) via the standard CX-ladder
/// construction.
pub fn push_pauli_evolution(c: &mut Circuit, string: &[(usize, u8)], theta: f64) {
    if string.is_empty() {
        return;
    }
    // Basis changes into Z.
    for &(q, ax) in string {
        match ax {
            0 => c.push(Gate::H(q)),
            1 => {
                c.push(Gate::Sdg(q));
                c.push(Gate::H(q));
            }
            _ => {}
        }
    }
    for w in string.windows(2) {
        c.push(Gate::Cx(w[0].0, w[1].0));
    }
    let last = string.last().unwrap().0;
    c.push(Gate::Rz(last, theta));
    for w in string.windows(2).rev() {
        c.push(Gate::Cx(w[0].0, w[1].0));
    }
    for &(q, ax) in string {
        match ax {
            0 => c.push(Gate::H(q)),
            1 => {
                c.push(Gate::H(q));
                c.push(Gate::S(q));
            }
            _ => {}
        }
    }
}

/// UCCSD-style ansatz: single and double excitations as Pauli-string
/// evolutions over `n` qubits, `reps` Trotter repetitions.
pub fn uccsd(n: usize, reps: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let occ = n / 2;
    for _ in 0..reps {
        // Singles: (i, a) pairs.
        for i in 0..occ {
            for a in occ..n {
                let theta = rng.gen_range(-0.4..0.4);
                push_pauli_evolution(&mut c, &[(i, 1), (a, 0)], theta);
                push_pauli_evolution(&mut c, &[(i, 0), (a, 1)], -theta);
            }
        }
        // A selection of doubles: (i, j, a, b).
        for i in 0..occ.saturating_sub(1) {
            let j = i + 1;
            let a = occ + (i % (n - occ));
            let b = occ + ((i + 1) % (n - occ));
            if a == b {
                continue;
            }
            let theta = rng.gen_range(-0.2..0.2);
            push_pauli_evolution(&mut c, &[(i, 0), (j, 0), (a, 0), (b, 1)], theta);
            push_pauli_evolution(&mut c, &[(i, 1), (j, 0), (a, 0), (b, 0)], -theta);
        }
    }
    c
}

/// Product-formula ("pf") program: Trotterized diagonal + transverse-field
/// Hamiltonian on a ring — long mergeable `Rzz` chains.
pub fn pf(n: usize, steps: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let js: Vec<f64> = (0..n).map(|_| rng.gen_range(0.4..1.0)).collect();
    for _ in 0..steps {
        for i in 0..n - 1 {
            c.push(Gate::Rzz(i, i + 1, 0.1 * js[i]));
        }
        for i in 0..n {
            c.push(Gate::Rz(i, 0.05 * js[i]));
        }
    }
    c
}

/// Random reversible network of X/CX/CCX gates — the ALU / HWB / URF
/// family backbone.
pub fn reversible_network(n: usize, gate_count: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gate_count {
        match rng.gen_range(0..10) {
            0 => c.push(Gate::X(rng.gen_range(0..n))),
            1..=4 => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cx(a, b));
            }
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                let mut t = rng.gen_range(0..n);
                while t == a || t == b {
                    t = rng.gen_range(0..n);
                }
                c.push(Gate::Ccx(a, b, t));
            }
        }
    }
    c
}

/// Comparator of two `bits`-bit registers into one flag qubit.
pub fn comparator(bits: usize) -> Circuit {
    let n = 2 * bits + 1;
    let mut c = Circuit::new(n);
    let flag = n - 1;
    for i in (0..bits).rev() {
        let (a, b) = (i, bits + i);
        // a_i > b_i while higher bits equal: approximate RevLib pattern.
        c.push(Gate::X(b));
        c.push(Gate::Ccx(a, b, flag));
        c.push(Gate::X(b));
        c.push(Gate::Cx(a, b));
    }
    for i in 0..bits {
        c.push(Gate::Cx(i, bits + i));
    }
    c
}

/// Multiplier by shift-and-add: `bits × bits → result` with CCX partial
/// products.
pub fn mult(bits: usize) -> Circuit {
    let n = 4 * bits;
    let mut c = Circuit::new(n);
    // a: [0..bits), b: [bits..2bits), p: [2bits..4bits)
    for i in 0..bits {
        for j in 0..bits {
            let p = 2 * bits + i + j;
            if p < n {
                c.push(Gate::Ccx(i, bits + j, p));
                // Carry propagation (simplified ripple).
                if p + 1 < n {
                    c.push(Gate::Ccx(i, p, p + 1));
                }
            }
        }
    }
    c
}

/// Modular adder pattern (add-then-compare-then-correct).
pub fn modulo(bits: usize, seed: u64) -> Circuit {
    let n = 2 * bits + 1;
    let mut c = Circuit::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..bits {
        c.push(Gate::Ccx(i, bits + i, n - 1));
        c.push(Gate::Cx(i, bits + i));
        if rng.gen_bool(0.5) {
            c.push(Gate::X(bits + i));
        }
    }
    for i in (0..bits).rev() {
        c.push(Gate::Ccx(i, bits + i, n - 1));
        c.push(Gate::Cx(n - 1, bits + i));
    }
    c
}

/// Encoder network: parity encodings with CX fans plus CCX checks.
pub fn encoding(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for d in 0..depth {
        let stride = 1 + d % (n / 2).max(1);
        for i in 0..n - stride {
            c.push(Gate::Cx(i, i + stride));
        }
        if n >= 3 {
            let a = rng.gen_range(0..n - 2);
            c.push(Gate::Ccx(a, a + 1, a + 2));
        }
        // Per-round bit flip so repeated rounds never telescope to the
        // identity on small registers.
        c.push(Gate::X(d % n));
    }
    c
}

/// Squaring circuit: `mult` specialised to b = a (denser CCX use).
pub fn square(bits: usize) -> Circuit {
    let n = 3 * bits + 1;
    let mut c = Circuit::new(n);
    for i in 0..bits {
        for j in i..bits {
            let p = bits + i + j;
            if p < n - 1 {
                if i == j {
                    // Diagonal partial product a_i·a_i = a_i.
                    c.push(Gate::Cx(i, p));
                } else {
                    c.push(Gate::Ccx(i, j, p));
                }
                c.push(Gate::Cx(p, p + 1));
            }
        }
    }
    // Interleave corrective Toffolis.
    for i in 0..bits.saturating_sub(1) {
        c.push(Gate::Ccx(i, i + 1, bits + i));
    }
    c
}

/// Symmetric-function benchmark (`sym6`-style): threshold counters.
pub fn sym(inputs: usize, seed: u64) -> Circuit {
    let n = inputs + inputs.div_ceil(2) + 1;
    let mut c = Circuit::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Count ones into a small register with CCX half-adders.
    for i in 0..inputs {
        let t0 = inputs + (i % (n - inputs - 1));
        c.push(Gate::Ccx(i, t0, n - 1));
        c.push(Gate::Cx(i, t0));
        if rng.gen_bool(0.3) {
            c.push(Gate::Ccx(t0, n - 1, inputs + ((i + 1) % (n - inputs - 1))));
        }
    }
    for i in (0..inputs).rev() {
        let t0 = inputs + (i % (n - inputs - 1));
        c.push(Gate::Ccx(i, t0, n - 1));
    }
    c
}

/// Bit adder: half/full-adder cascade over `bits` columns.
pub fn bit_adder(bits: usize) -> Circuit {
    let n = 3 * bits + 1;
    let mut c = Circuit::new(n);
    for i in 0..bits {
        let (a, b, s) = (i, bits + i, 2 * bits + i);
        // Full adder: sum and carry with Toffolis.
        c.push(Gate::Ccx(a, b, s + 1));
        c.push(Gate::Cx(a, b));
        c.push(Gate::Ccx(b, s, s + 1));
        c.push(Gate::Cx(b, s));
        c.push(Gate::Cx(a, b));
    }
    c
}

/// ALU slice: operation-select + conditional add/and/xor (RevLib
/// `alu-v*` family shape).
pub fn alu(variant: u64) -> Circuit {
    let n = 5;
    let mut c = Circuit::new(n);
    let mut rng = StdRng::seed_from_u64(variant);
    let ops = 6 + (variant % 5) as usize * 8;
    for _ in 0..ops {
        match rng.gen_range(0..5) {
            0 => c.push(Gate::Ccx(4, 0, 2)),
            1 => c.push(Gate::Ccx(0, 1, 3)),
            2 => c.push(Gate::Cx(1, 2)),
            3 => {
                c.push(Gate::Cx(4, 3));
                c.push(Gate::Ccx(2, 3, 1))
            }
            _ => c.push(Gate::X(rng.gen_range(0..n))),
        }
    }
    c
}

/// Hidden-weighted-bit: weight counter + controlled rotation network.
pub fn hwb(n: usize, seed: u64) -> Circuit {
    // The RevLib hwb circuits are dense unstructured reversible networks.
    reversible_network(n, 9 * n, seed)
}

/// Unstructured reversible function (`urf`): very dense random network.
pub fn urf(n: usize, gate_count: usize, seed: u64) -> Circuit {
    reversible_network(n, gate_count, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qsim::process_infidelity;

    #[test]
    fn qft_is_correct_on_3_qubits() {
        let c = qft(3);
        let u = c.unitary();
        let dim = 8usize;
        let omega = 2.0 * PI / dim as f64;
        let want = reqisc_qmath::CMat::from_fn(dim, dim, |r, k| {
            reqisc_qmath::C64::cis(omega * (r * k) as f64).scale(1.0 / (dim as f64).sqrt())
        });
        let inf = process_infidelity(&u, &want);
        assert!(inf < 1e-9, "QFT wrong: infidelity {inf}");
    }

    #[test]
    fn ripple_add_adds() {
        // 2-bit adder: check a=1, b=1 → b=2 (states: [cin a0 b0 a1 b1 cout]).
        let c = ripple_add(2);
        let mut sv = reqisc_qsim::StateVector::zero(6);
        // a = 1 → a0 = 1 (qubit 1); b = 1 → b0 = 1 (qubit 2).
        sv.apply_gate(&Gate::X(1));
        sv.apply_gate(&Gate::X(2));
        sv.run(&c);
        let p = sv.probabilities();
        let top: usize = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Expect b = a + b = 2 = (b1, b0) = (1, 0), a unchanged = 1, no
        // carry out. Qubits [cin=0, a0=1, b0=0, a1=0, b1=1, cout=0] →
        // index 0b010010 (qubit 0 is MSB).
        assert_eq!(top, 0b010010, "adder output {top:#08b}");
        assert!((p[top] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generators_produce_valid_circuits() {
        let cases: Vec<(&str, Circuit)> = vec![
            ("qft", qft(5)),
            ("ripple", ripple_add(3)),
            ("tof", tof_ladder(4)),
            ("grover", grover(4, 1)),
            ("qaoa", qaoa(6, 2, 1)),
            ("uccsd", uccsd(6, 1, 2)),
            ("pf", pf(6, 3, 3)),
            ("alu", alu(0)),
            ("comparator", comparator(3)),
            ("mult", mult(2)),
            ("modulo", modulo(2, 4)),
            ("encoding", encoding(5, 3, 5)),
            ("square", square(2)),
            ("sym", sym(4, 6)),
            ("bit_adder", bit_adder(2)),
            ("hwb", hwb(4, 7)),
            ("urf", urf(5, 60, 8)),
        ];
        for (name, c) in cases {
            assert!(!c.is_empty(), "{name} empty");
            assert!(c.num_qubits() >= 2, "{name} too narrow");
            // Deterministic: regenerating gives the identical circuit.
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(qaoa(6, 2, 9).gates(), qaoa(6, 2, 9).gates());
        assert_eq!(urf(5, 50, 1).gates(), urf(5, 50, 1).gates());
        assert_ne!(urf(5, 50, 1).gates(), urf(5, 50, 2).gates());
    }

    #[test]
    fn pauli_evolution_is_unitary_and_correct() {
        // exp(-iθ/2 Z) on one qubit = Rz(θ).
        let mut c = Circuit::new(1);
        push_pauli_evolution(&mut c, &[(0, 2)], 0.7);
        let want = reqisc_qmath::gates::rz(0.7);
        let inf = process_infidelity(&c.unitary(), &want);
        assert!(inf < 1e-12);
        // exp(-iθ/2 XX): compare against Can-like construction.
        let mut c2 = Circuit::new(2);
        push_pauli_evolution(&mut c2, &[(0, 0), (1, 0)], 0.9);
        let want2 = reqisc_qmath::gates::canonical_gate(0.45, 0.0, 0.0);
        let inf2 = process_infidelity(&c2.unitary(), &want2);
        assert!(inf2 < 1e-10, "XX evolution wrong: {inf2}");
    }

    #[test]
    fn grover_amplifies_marked_state() {
        // 3 search qubits, 2 iterations ≈ optimal for N=8.
        let c = grover(3, 2).lowered_to_cx();
        let mut sv = reqisc_qsim::StateVector::zero(c.num_qubits());
        sv.run(&c);
        let p = sv.probabilities();
        // Marginal probability of search register = |111⟩.
        let n = c.num_qubits();
        let mut marked = 0.0;
        for (i, prob) in p.iter().enumerate() {
            let bits = i >> (n - 3);
            if bits == 0b111 {
                marked += prob;
            }
        }
        assert!(marked > 0.8, "Grover failed to amplify: {marked}");
    }
}
