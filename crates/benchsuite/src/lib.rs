#![warn(missing_docs)]
//! # reqisc-benchsuite
//!
//! Deterministic generators for the paper's 132-program, 17-category
//! benchmark suite (Table 1). The original suite comes from RevLib and the
//! TKet benchmarking repository; these generators rebuild the same program
//! families from their published definitions (QFT, Cuccaro adders with
//! MAJ/UMA, Grover, QAOA, Trotterized evolutions, Toffoli ladders, random
//! reversible networks, …) at two scales.
//!
//! ## Quick start
//!
//! ```
//! use reqisc_benchsuite::{suite, Scale};
//! let programs = suite(Scale::Demo);
//! assert_eq!(programs.len(), 132);
//! ```

pub mod category;
pub mod generators;
pub mod suite;

pub use category::{Category, ALL_CATEGORIES};
pub use suite::{
    category_programs, mini_suite, mini_suite_capped, scale_from_env, suite, Benchmark, Scale,
};
