//! `reqisc-client` — a small line-protocol client for `reqiscd`.
//!
//! ```text
//! reqisc-client [--socket PATH] [--connect-timeout-secs S] <command>
//!
//! commands:
//!   submit --pipeline P (--bench NAME | --qasm-file FILE) [--priority N]
//!   suite [--take N] [--pipelines a,b,...]      submit demo-suite programs
//!   stats [--require-program-hit-pct X] [--require-zero-rejected]
//!         [--require-shared-hits N] [--require-zero-solves]
//!   snapshot
//!   compact [--max-idle-gens N]
//!   shutdown
//! ```
//!
//! Prints every response line to stdout; exits nonzero when any response
//! is not ok or an assertion flag fails. The connect loop retries for
//! `--connect-timeout-secs` (default 10) so a just-spawned daemon can
//! finish binding its socket.

#[cfg(unix)]
fn main() {
    use reqisc_service::{Json, StatsSnapshot};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;

    fn usage() -> ! {
        eprintln!(
            "usage: reqisc-client [--socket PATH] [--connect-timeout-secs S] \
             (submit --pipeline P (--bench NAME | --qasm-file F) [--priority N] \
             | suite [--take N] [--pipelines a,b] \
             | stats [--require-program-hit-pct X] [--require-zero-rejected] \
             [--require-shared-hits N] [--require-zero-solves] \
             | snapshot | compact [--max-idle-gens N] | shutdown)"
        );
        std::process::exit(2);
    }

    let mut socket = PathBuf::from("/tmp/reqiscd.sock");
    let mut connect_timeout = std::time::Duration::from_secs(10);
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--connect-timeout-secs" => {
                let s: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                connect_timeout = std::time::Duration::from_secs(s);
            }
            _ => {
                rest.push(a);
                rest.extend(it.by_ref());
            }
        }
    }
    if rest.is_empty() {
        usage();
    }
    let command = rest.remove(0);
    let flag = |name: &str| -> Option<String> {
        rest.iter().position(|a| a == name).map(|i| {
            rest.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        })
    };
    let has = |name: &str| rest.iter().any(|a| a == name);

    // Build the request lines.
    let mut require_hit_pct: Option<f64> = None;
    let mut require_zero_rejected = false;
    let mut require_shared_hits: Option<u64> = None;
    let mut require_zero_solves = false;
    let mut lines: Vec<String> = Vec::new();
    let mut next_id = 1u64;
    let mut id = || {
        let v = next_id;
        next_id += 1;
        v
    };
    match command.as_str() {
        "submit" => {
            let pipeline = flag("--pipeline").unwrap_or_else(|| usage());
            let priority = flag("--priority").map(|p| format!(",\"priority\":{p}")).unwrap_or_default();
            let source = match (flag("--bench"), flag("--qasm-file")) {
                (Some(b), None) => format!("\"bench\":{}", Json::str(b).emit()),
                (None, Some(f)) => {
                    let text = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                        eprintln!("cannot read {f}: {e}");
                        std::process::exit(1);
                    });
                    format!("\"qasm\":{}", Json::str(text).emit())
                }
                _ => usage(),
            };
            lines.push(format!(
                "{{\"id\":{},\"op\":\"compile\",\"pipeline\":{},{}{}}}",
                id(),
                Json::str(pipeline).emit(),
                source,
                priority
            ));
        }
        "suite" => {
            let take: usize = flag("--take").and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
            let pipelines = flag("--pipelines").unwrap_or_else(|| "reqisc-eff".into());
            let names: Vec<String> = reqisc_benchsuite::suite(reqisc_benchsuite::Scale::Demo)
                .into_iter()
                .map(|b| b.name)
                .take(take)
                .collect();
            for p in pipelines.split(',') {
                for n in &names {
                    lines.push(format!(
                        "{{\"id\":{},\"op\":\"compile\",\"pipeline\":{},\"bench\":{}}}",
                        id(),
                        Json::str(p).emit(),
                        Json::str(n.clone()).emit()
                    ));
                }
            }
        }
        "stats" => {
            require_hit_pct = flag("--require-program-hit-pct").and_then(|v| v.parse().ok());
            require_zero_rejected = has("--require-zero-rejected");
            require_shared_hits = flag("--require-shared-hits").and_then(|v| v.parse().ok());
            require_zero_solves = has("--require-zero-solves");
            lines.push(format!("{{\"id\":{},\"op\":\"stats\"}}", id()));
        }
        "snapshot" => lines.push(format!("{{\"id\":{},\"op\":\"snapshot\"}}", id())),
        "compact" => {
            let gens = flag("--max-idle-gens")
                .map(|g| format!(",\"max_idle_gens\":{g}"))
                .unwrap_or_default();
            lines.push(format!("{{\"id\":{},\"op\":\"compact\"{}}}", id(), gens));
        }
        "shutdown" => lines.push(format!("{{\"id\":{},\"op\":\"shutdown\"}}", id())),
        _ => usage(),
    }

    // Connect (with retry — the daemon may still be binding).
    let deadline = std::time::Instant::now() + connect_timeout;
    let stream = loop {
        match UnixStream::connect(&socket) {
            Ok(s) => break s,
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    eprintln!("cannot connect to {}: {e}", socket.display());
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
    };

    // Send in bounded windows and read each window's (in-order)
    // responses before sending the next: a large `suite` must not
    // outrun the daemon's bounded queue (default capacity 256) — that
    // would turn the bulk path into guaranteed queue_full rejections.
    const WINDOW: usize = 128;
    let mut reader = BufReader::new(&stream);
    let mut collected: Vec<String> = Vec::new();
    let mut early_eof = false;
    for chunk in lines.chunks(WINDOW) {
        {
            let mut w = &stream;
            for l in chunk {
                writeln!(w, "{l}").expect("write request");
            }
            w.flush().expect("flush");
        }
        for _ in 0..chunk.len() {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read response") == 0 {
                early_eof = true;
                break;
            }
            collected.push(line.trim_end().to_string());
        }
        if early_eof {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let mut failures = 0u64;
    let mut responses = 0u64;
    for line in collected {
        if line.trim().is_empty() {
            continue;
        }
        println!("{line}");
        responses += 1;
        let v = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("unparseable response: {e}");
                failures += 1;
                continue;
            }
        };
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            failures += 1;
            continue;
        }
        if let Some(stats) = v.get("stats") {
            match StatsSnapshot::from_json(stats) {
                Ok(s) => {
                    if let Some(pct) = require_hit_pct {
                        let p = &s.cache.programs;
                        let rate = 100.0 * p.hit_rate();
                        if p.lookups() == 0 || rate < pct {
                            eprintln!(
                                "ASSERTION FAILED: program-pool hit rate {rate:.1}% < {pct}% \
                                 ({} hits / {} lookups)",
                                p.hits,
                                p.lookups()
                            );
                            failures += 1;
                        } else {
                            eprintln!("# assertion passed: program-pool hit rate {rate:.1}% >= {pct}%");
                        }
                    }
                    if let Some(min) = require_shared_hits {
                        match s.shared {
                            Some(sh) if sh.hits >= min => {
                                eprintln!(
                                    "# assertion passed: {} shared-segment hits >= {min}",
                                    sh.hits
                                );
                            }
                            Some(sh) => {
                                eprintln!(
                                    "ASSERTION FAILED: {} shared-segment hits < {min}",
                                    sh.hits
                                );
                                failures += 1;
                            }
                            None => {
                                eprintln!("ASSERTION FAILED: service has no shared segment");
                                failures += 1;
                            }
                        }
                    }
                    if require_zero_solves {
                        let claimed = s.stages.solve_claimed;
                        if claimed == 0 {
                            eprintln!("# assertion passed: zero solve claims (fully warm)");
                        } else {
                            eprintln!(
                                "ASSERTION FAILED: {claimed} solve claim(s) — a warm \
                                 workload duplicated a peer's solve"
                            );
                            failures += 1;
                        }
                    }
                    if require_zero_rejected {
                        match s.store {
                            Some(st) if st.rejected == 0 => {
                                eprintln!("# assertion passed: zero rejected store loads");
                            }
                            Some(st) => {
                                eprintln!(
                                    "ASSERTION FAILED: {} rejected store loads",
                                    st.rejected
                                );
                                failures += 1;
                            }
                            None => {
                                eprintln!("ASSERTION FAILED: service has no store");
                                failures += 1;
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("bad stats payload: {e}");
                    failures += 1;
                }
            }
        }
    }
    if responses < lines.len() as u64 {
        eprintln!("missing responses: sent {}, got {responses}", lines.len());
        failures += 1;
    }
    if failures > 0 {
        eprintln!("{failures} failure(s)");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("reqisc-client needs unix domain sockets");
    std::process::exit(2);
}
