//! `reqiscd` — the resident compile-service daemon.
//!
//! ```text
//! reqiscd --socket /tmp/reqiscd.sock --cache-dir ~/.cache/reqisc
//! reqiscd --stdio                      # serve one stdin/stdout session
//! reqiscd --compact-now --cache-dir D  # one GC pass over D, then exit
//! ```
//!
//! Flags (all optional):
//!
//! * `--socket PATH` — serve a Unix domain socket (default when neither
//!   `--stdio` nor `--compact-now` is given; default path
//!   `/tmp/reqiscd.sock`);
//! * `--stdio` — serve exactly one session on stdin/stdout (tests, CI,
//!   `socat`-style supervision);
//! * `--cache-dir DIR` — persistent store directory (default: the
//!   `REQISC_CACHE_DIR` environment variable; no store when both unset);
//! * `--workers N` — solve worker pool size (0 = hardware parallelism);
//! * `--lookup-workers N` — lookup-stage worker count (default: the
//!   `REQISC_SERVE_LOOKUP_WORKERS` environment knob, else 1);
//! * `--solve-delay-ms MS` — park every solve worker for MS before each
//!   cold compile it claims (stall-isolation drills; default: the
//!   `REQISC_DEBUG_SOLVE_DELAY_MS` environment knob, else off);
//! * `--queue-capacity N` — bounded queue size (default 256);
//! * `--snapshot-secs S` — periodic store snapshot interval (default 30;
//!   0 disables the timer — the store still flushes on shutdown);
//! * `--gc-idle-gens N` — snapshots become compacting: entries idle for
//!   more than N store generations are dropped (default: GC off);
//! * `--pool-shards N` / `--pool-capacity N` — bound the in-memory memo
//!   pools (LRU eviction; default generous/off);
//! * `--shm-path PATH` — attach the shared-memory cache segment at PATH
//!   (default: the `REQISC_SHM_PATH` environment knob; no shared tier
//!   when both unset);
//! * `--shm-capacity-bytes N` — capacity if the segment does not exist
//!   yet (default: `REQISC_SHM_CAPACITY_BYTES`, else 64 MiB);
//! * `--compact-now` — run one compaction over `--cache-dir` with
//!   `--gc-idle-gens` (default 2 in this mode) — and over the
//!   `--shm-path` segment, if one is configured and no daemon is
//!   attached — then exit;
//! * `--debug-ops` — accept the `sleep`/`panic` debug ops.

use reqisc_service::{cache_dir_from_env, serve_lines, Service, ServiceConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    socket: PathBuf,
    stdio: bool,
    compact_now: bool,
    config: ServiceConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: reqiscd [--socket PATH | --stdio | --compact-now] [--cache-dir DIR] \
         [--workers N] [--lookup-workers N] [--solve-delay-ms MS] [--queue-capacity N] \
         [--snapshot-secs S] [--gc-idle-gens N] [--pool-shards N] [--pool-capacity N] \
         [--shm-path PATH] [--shm-capacity-bytes N] [--debug-ops]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: PathBuf::from("/tmp/reqiscd.sock"),
        stdio: false,
        compact_now: false,
        config: ServiceConfig {
            cache_dir: cache_dir_from_env(),
            snapshot_interval: Some(Duration::from_secs(30)),
            lookup_workers: reqisc_env::SERVE_LOOKUP_WORKERS.usize_or(1),
            shm_path: reqisc_env::SHM_PATH.path(),
            shm_capacity_bytes: reqisc_env::SHM_CAPACITY_BYTES
                .u64_or(reqisc_service::DEFAULT_SHM_CAPACITY_BYTES),
            ..ServiceConfig::default()
        },
    };
    let mut pool_shards: usize = 16;
    let mut pool_capacity: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--socket" => args.socket = PathBuf::from(val("--socket")),
            "--stdio" => args.stdio = true,
            "--compact-now" => args.compact_now = true,
            "--cache-dir" => args.config.cache_dir = Some(PathBuf::from(val("--cache-dir"))),
            "--workers" => args.config.workers = parse_num(&val("--workers"), "--workers"),
            "--lookup-workers" => {
                args.config.lookup_workers =
                    parse_num(&val("--lookup-workers"), "--lookup-workers")
            }
            "--solve-delay-ms" => {
                args.config.solve_delay_ms =
                    Some(parse_num(&val("--solve-delay-ms"), "--solve-delay-ms"))
            }
            "--queue-capacity" => {
                args.config.queue_capacity = parse_num(&val("--queue-capacity"), "--queue-capacity")
            }
            "--snapshot-secs" => {
                let s: u64 = parse_num(&val("--snapshot-secs"), "--snapshot-secs");
                args.config.snapshot_interval =
                    (s > 0).then(|| Duration::from_secs(s));
            }
            "--gc-idle-gens" => {
                args.config.gc_max_idle_gens =
                    Some(parse_num(&val("--gc-idle-gens"), "--gc-idle-gens"));
            }
            "--shm-path" => args.config.shm_path = Some(PathBuf::from(val("--shm-path"))),
            "--shm-capacity-bytes" => {
                args.config.shm_capacity_bytes =
                    parse_num(&val("--shm-capacity-bytes"), "--shm-capacity-bytes")
            }
            "--pool-shards" => pool_shards = parse_num(&val("--pool-shards"), "--pool-shards"),
            "--pool-capacity" => {
                pool_capacity = Some(parse_num(&val("--pool-capacity"), "--pool-capacity"))
            }
            "--debug-ops" => args.config.debug_ops = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args.config.pool_shape = pool_capacity.map(|cap| (pool_shards, cap));
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: invalid value '{s}'");
        usage()
    })
}

fn main() {
    let args = parse_args();

    if args.compact_now {
        if args.config.cache_dir.is_none() && args.config.shm_path.is_none() {
            eprintln!(
                "--compact-now needs --cache-dir (or REQISC_CACHE_DIR) \
                 and/or --shm-path (or REQISC_SHM_PATH)"
            );
            std::process::exit(2);
        }
        // One offline GC pass: nothing is live (no resident cache), so
        // only the idle-generation threshold decides what survives. The
        // default of 2 keeps everything referenced in the last two
        // saves — pass --gc-idle-gens 0 to keep nothing.
        let max_idle = args.config.gc_max_idle_gens.unwrap_or(2);
        if let Some(dir) = args.config.cache_dir.clone() {
            let store = reqisc_compiler::CacheStore::new(&dir);
            let cache = reqisc_compiler::CompileCache::new();
            match store.compact(&cache, max_idle) {
                Ok(o) => {
                    println!(
                        "compacted {} (generation {}): kept {}, dropped {}",
                        store.path().display(),
                        o.generation,
                        o.kept,
                        o.dropped
                    );
                }
                Err(e) => {
                    eprintln!("compaction failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        // The shared segment compacts under the same idle-generation
        // threshold; it requires exclusive access (every daemon
        // detached) and reports Busy otherwise.
        if let Some(shm) = args.config.shm_path.clone() {
            match reqisc_shmem::compact_file(
                &shm,
                args.config.shm_capacity_bytes,
                reqisc_compiler::STORE_FORMAT_VERSION,
                max_idle,
            ) {
                Ok(r) => {
                    println!(
                        "compacted segment {}: kept {}, dropped {}",
                        shm.display(),
                        r.kept,
                        r.dropped
                    );
                }
                Err(e) => {
                    eprintln!("segment compaction failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let service = Service::start(args.config.clone());
    if let Some(outcome) = service.startup_load() {
        eprintln!("# reqiscd: store load: {outcome:?}");
    }
    if args.stdio {
        let stdin = std::io::stdin();
        // `StdoutLock` is not `Send` (the responder thread owns the
        // writer); the unlocked handle locks per write instead.
        if let Err(e) = serve_lines(&service, stdin.lock(), std::io::stdout()) {
            eprintln!("# reqiscd: stdio session failed: {e}");
        }
    } else {
        eprintln!("# reqiscd: serving {}", args.socket.display());
        #[cfg(unix)]
        if let Err(e) = reqisc_service::serve_unix(&service, &args.socket) {
            eprintln!("# reqiscd: socket server failed: {e}");
            service.shutdown();
            std::process::exit(1);
        }
        #[cfg(not(unix))]
        {
            eprintln!("# reqiscd: unix sockets unavailable on this platform; use --stdio");
            service.shutdown();
            std::process::exit(2);
        }
    }
    service.shutdown();
    let s = service.stats_snapshot();
    eprintln!(
        "# reqiscd: exiting after {} submitted / {} completed / {} coalesced / {} rejected",
        s.service.submitted, s.service.completed, s.service.coalesced,
        s.service.rejected_queue_full
    );
}
