//! Transports: a generic line-stream server (the `--stdio` mode and the
//! per-connection loop of the socket server) and the Unix-domain-socket
//! accept loop.
//!
//! ## Ordering model
//!
//! Responses are written **in request order** per connection. The reader
//! (caller's thread) parses and *submits* each line without waiting —
//! this is what lets identical pipelined requests coalesce — while a
//! scoped responder thread resolves the pending replies in order.
//! Deferred ops (`stats`, `snapshot`, `compact`) are evaluated by the
//! responder *when their turn comes*, i.e. after every earlier request
//! on the connection has completed — which makes `…compiles, stats`
//! scripts read deterministic counters.

use crate::protocol::{
    compile_response, error_response, ok_response, parse_request, RequestBody,
};
use crate::json::Json;
use crate::queue::DEFAULT_PRIORITY;
use crate::service::{DebugOp, JobDone, Service, SnapshotReport, SubmitError, Ticket};
use crate::sync::LockRecover;
use std::io::{BufRead, Write};

/// What one connection's request stream did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Request lines processed (well-formed or not).
    pub requests: u64,
    /// True when the stream ended on a `shutdown` request (already
    /// recorded on the service via [`Service::request_shutdown`]).
    pub shutdown: bool,
}

/// One queued reply slot, resolved by the responder in request order.
enum Pending {
    /// Already-built response (errors, acks).
    Ready(Json),
    /// A compile job's claim; resolved when the job finishes.
    Compile { id: u64, ticket: Ticket },
    /// A debug job's claim.
    Debug { id: u64, op: &'static str, ticket: Ticket },
    /// Deferred stats evaluation.
    Stats { id: u64 },
    /// Deferred plain snapshot.
    Snapshot { id: u64 },
    /// Deferred compacting snapshot.
    Compact { id: u64, max_idle_gens: Option<u64> },
}

/// Hard cap on one request line. Bounds what an untrusted client can
/// make the daemon buffer *before* any protocol-level limit (e.g.
/// `ParseLimits`) gets a say — an oversized line is discarded as it
/// streams past, never accumulated.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 << 20;

/// Reads one `\n`-terminated line of at most `cap` bytes.
/// `Ok(None)` = EOF; `Ok(Some(Err(())))` = the line exceeded `cap` and
/// was consumed/discarded; `Ok(Some(Ok(line)))` otherwise (invalid UTF-8
/// is replaced lossily — the JSON parse will reject it with a real
/// response).
fn read_line_bounded(
    r: &mut impl BufRead,
    cap: usize,
) -> std::io::Result<Option<Result<String, ()>>> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() && !overflow {
                return Ok(None);
            }
            break;
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if !overflow {
                    // lint:allow(panic-path, i comes from position() over this very buffer)
                    line.extend_from_slice(&buf[..i]);
                }
                r.consume(i + 1);
                break;
            }
            None => {
                if !overflow {
                    line.extend_from_slice(buf);
                }
                let n = buf.len();
                r.consume(n);
                if line.len() > cap {
                    overflow = true;
                    line = Vec::new();
                }
            }
        }
    }
    if overflow || line.len() > cap {
        return Ok(Some(Err(())));
    }
    Ok(Some(Ok(String::from_utf8_lossy(&line).into_owned())))
}

/// Serves one line-delimited request stream until EOF or `shutdown`.
/// The caller's thread reads and submits; a scoped responder thread
/// writes responses in request order (see module docs).
///
/// # Errors
///
/// I/O errors from the reader or writer. Protocol-level problems are
/// *responses*, never errors.
pub fn serve_lines(
    service: &Service,
    mut reader: impl BufRead,
    writer: impl Write + Send,
) -> std::io::Result<ServeOutcome> {
    let (tx, rx) = std::sync::mpsc::channel::<Pending>();
    let mut outcome = ServeOutcome { requests: 0, shutdown: false };
    let (read_result, write_result) = std::thread::scope(|scope| {
        let responder = scope.spawn(move || respond_loop(service, rx, writer));
        let mut read_result = Ok(());
        loop {
            let line = match read_line_bounded(&mut reader, MAX_REQUEST_LINE_BYTES) {
                Ok(None) => break,
                Ok(Some(Ok(l))) => l,
                Ok(Some(Err(()))) => {
                    outcome.requests += 1;
                    let resp = error_response(
                        0,
                        "parse_error",
                        format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    );
                    if tx.send(Pending::Ready(resp)).is_err() {
                        break;
                    }
                    continue;
                }
                Err(e) => {
                    read_result = Err(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            outcome.requests += 1;
            let pending = handle_line(service, &line);
            let is_shutdown = matches!(
                &pending,
                Pending::Ready(j)
                    if j.get("op").and_then(Json::as_str) == Some("shutdown")
            );
            if tx.send(pending).is_err() {
                break; // responder died (writer error); stop reading
            }
            if is_shutdown {
                outcome.shutdown = true;
                break;
            }
        }
        drop(tx);
        // A panicked responder must not take the reader down with it:
        // surface it as an I/O error on this connection instead.
        let write_result = responder.join().unwrap_or_else(|_| {
            Err(std::io::Error::other("responder thread panicked"))
        });
        (read_result, write_result)
    });
    read_result?;
    write_result?;
    Ok(outcome)
}

/// Parses and submits one request line, producing its pending reply.
fn handle_line(service: &Service, line: &str) -> Pending {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return Pending::Ready(error_response(0, "parse_error", e)),
    };
    let id = req.id;
    match req.body {
        RequestBody::Compile { source, pipeline, priority } => {
            let circuit = match service.resolve_source(&source) {
                Ok(c) => c,
                Err(e) => return Pending::Ready(error_response(id, "bad_request", e.to_string())),
            };
            match service.submit_compile(circuit, pipeline, priority) {
                Ok(ticket) => Pending::Compile { id, ticket },
                Err(SubmitError::QueueFull(q)) => {
                    Pending::Ready(error_response(id, "queue_full", q.to_string()))
                }
                Err(SubmitError::Invalid(m)) => {
                    Pending::Ready(error_response(id, "bad_request", m))
                }
            }
        }
        RequestBody::Stats => Pending::Stats { id },
        RequestBody::Snapshot => Pending::Snapshot { id },
        RequestBody::Compact { max_idle_gens } => Pending::Compact { id, max_idle_gens },
        RequestBody::Shutdown => {
            service.request_shutdown();
            Pending::Ready(ok_response(id, "shutdown"))
        }
        RequestBody::DebugSleep { ms } => {
            match service.submit_debug(DebugOp::Sleep { ms }, DEFAULT_PRIORITY) {
                Ok(ticket) => Pending::Debug { id, op: "sleep", ticket },
                Err(e) => Pending::Ready(submit_error_response(id, e)),
            }
        }
        RequestBody::DebugPanic => {
            match service.submit_debug(DebugOp::Panic, DEFAULT_PRIORITY) {
                Ok(ticket) => Pending::Debug { id, op: "panic", ticket },
                Err(e) => Pending::Ready(submit_error_response(id, e)),
            }
        }
    }
}

fn submit_error_response(id: u64, e: SubmitError) -> Json {
    match e {
        SubmitError::QueueFull(q) => error_response(id, "queue_full", q.to_string()),
        SubmitError::Invalid(m) => error_response(id, "bad_request", m),
    }
}

fn snapshot_response(id: u64, op: &str, r: std::io::Result<SnapshotReport>) -> Json {
    match r {
        Ok(SnapshotReport::NoStore) => {
            error_response(id, "no_store", "service is running without a cache dir")
        }
        Ok(SnapshotReport::Saved { entries }) => {
            let mut j = ok_response(id, op);
            if let Json::Obj(members) = &mut j {
                members.push(("saved_entries".into(), Json::num_u64(entries as u64)));
            }
            j
        }
        Ok(SnapshotReport::Compacted(o)) => {
            let mut j = ok_response(id, op);
            if let Json::Obj(members) = &mut j {
                members.push(("kept".into(), Json::num_u64(o.kept as u64)));
                members.push(("dropped".into(), Json::num_u64(o.dropped as u64)));
                members.push(("generation".into(), Json::num_u64(o.generation)));
            }
            j
        }
        Err(e) => error_response(id, "io", e.to_string()),
    }
}

fn respond_loop(
    service: &Service,
    rx: std::sync::mpsc::Receiver<Pending>,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for pending in rx {
        let response = match pending {
            Pending::Ready(j) => j,
            Pending::Compile { id, ticket } => {
                let coalesced = ticket.coalesced;
                match ticket.wait() {
                    Ok(JobDone { circuit: Some(c), done_seq }) => compile_response(
                        id,
                        c.content_hash(),
                        &service.metrics(&c),
                        coalesced,
                        done_seq,
                    ),
                    // A compile job always carries a circuit; answering
                    // `internal` beats panicking the responder if that
                    // invariant ever breaks.
                    Ok(JobDone { circuit: None, .. }) => {
                        error_response(id, "internal", "compile job returned no circuit")
                    }
                    Err(e) => error_response(id, "compile_failed", e),
                }
            }
            Pending::Debug { id, op, ticket } => match ticket.wait() {
                Ok(_) => ok_response(id, op),
                Err(e) => error_response(id, "compile_failed", e),
            },
            Pending::Stats { id } => {
                let mut j = ok_response(id, "stats");
                if let Json::Obj(members) = &mut j {
                    members.push(("stats".into(), service.stats_snapshot().to_json()));
                }
                j
            }
            Pending::Snapshot { id } => snapshot_response(id, "snapshot", service.snapshot_now()),
            Pending::Compact { id, max_idle_gens } => {
                snapshot_response(id, "compact", service.compact_now(max_idle_gens))
            }
        };
        writeln!(writer, "{}", response.emit())?;
        writer.flush()?;
    }
    Ok(())
}

/// Runs the Unix-domain-socket accept loop until a `shutdown` request
/// arrives on any connection. Each connection gets its own thread running
/// [`serve_lines`]. The socket file is (re)created on entry and removed
/// on exit.
///
/// # Errors
///
/// Socket bind/accept errors. Per-connection I/O errors only end that
/// connection.
#[cfg(unix)]
pub fn serve_unix(service: &Service, socket_path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(socket_path);
    if let Some(dir) = socket_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let listener = UnixListener::bind(socket_path)?;
    // Nonblocking accept + poll: std has no way to interrupt a blocking
    // accept when a connection thread flips the shutdown flag.
    listener.set_nonblocking(true)?;
    // Cloned handles of every accepted connection: on shutdown the
    // accept loop force-closes them so a connection thread parked in a
    // blocking read wakes with EOF — otherwise one idle client would
    // keep the scope join (and the final store flush) waiting forever.
    let conns: crate::sync::Mutex<Vec<std::os::unix::net::UnixStream>> =
        crate::sync::Mutex::new(Vec::new());
    let result = std::thread::scope(|scope| loop {
        if service.shutdown_requested() {
            for s in conns.lock_recover().iter() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if let Ok(clone) = stream.try_clone() {
                    conns.lock_recover().push(clone);
                }
                scope.spawn(move || {
                    if stream.set_nonblocking(false).is_err() {
                        return;
                    }
                    let reader = std::io::BufReader::new(&stream);
                    let _ = serve_lines(service, reader, &stream);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    });
    let _ = std::fs::remove_file(socket_path);
    result
}
