//! The wire protocol: line-delimited JSON requests and responses.
//!
//! ## Requests
//!
//! One JSON object per line. `id` is an arbitrary caller-chosen u64
//! echoed back in the response; `op` selects the operation:
//!
//! ```text
//! {"id":1,"op":"compile","pipeline":"reqisc-eff","qasm":"qubits 2\ncx 0 1\n","priority":7}
//! {"id":2,"op":"compile","pipeline":"reqisc-full","bench":"alu_v0"}
//! {"id":3,"op":"stats"}
//! {"id":4,"op":"snapshot"}
//! {"id":5,"op":"compact","max_idle_gens":2}
//! {"id":6,"op":"shutdown"}
//! ```
//!
//! `compile` takes exactly one of `qasm` (QASM-lite source, see
//! `reqisc_qcircuit::qasm`) or `bench` (a demo-suite program name);
//! `priority` is optional (0–9, default 5, higher first). Two debug ops,
//! `sleep` (`{"ms":N}`) and `panic`, exist behind the daemon's
//! `--debug-ops` flag so tests can pin queue semantics deterministically.
//!
//! ## Responses
//!
//! One JSON object per line, in request order per connection:
//!
//! ```text
//! {"id":1,"ok":true,"op":"compile","fingerprint":"6b86…","count_2q":1,"depth_2q":1,"duration_g":2.22,"coalesced":false,"done_seq":1}
//! {"id":3,"ok":true,"op":"stats","stats":{…}}
//! {"id":9,"ok":false,"error":"queue_full","detail":"queue full (capacity 256)"}
//! ```
//!
//! Error `error` codes are machine-matchable: `queue_full`, `bad_request`,
//! `parse_error`, `compile_failed`, `no_store`, `io`.

use crate::json::Json;
use crate::queue::{Priority, DEFAULT_PRIORITY, MAX_PRIORITY};
use reqisc_compiler::{CacheStats, CompileCacheStats, Metrics, Pipeline, SolverStats, StoreStats};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The program source of a compile request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileSource {
    /// Inline QASM-lite source text.
    Qasm(String),
    /// A benchsuite demo-scale program name (e.g. `alu_v0`).
    Bench(String),
}

/// A request's operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Compile a program through a pipeline.
    Compile {
        /// Where the program comes from.
        source: CompileSource,
        /// The pipeline to run.
        pipeline: Pipeline,
        /// Queue priority (0–9, higher first).
        priority: Priority,
    },
    /// Counter snapshot (service + cache + store) as JSON.
    Stats,
    /// Persist the cache pools to the store now.
    Snapshot,
    /// Snapshot + GC: drop entries idle for more than `max_idle_gens`
    /// store generations (`None` = the service's configured default).
    Compact {
        /// Idle-generation threshold override.
        max_idle_gens: Option<u64>,
    },
    /// Graceful shutdown: drain the queue, flush the store, exit.
    Shutdown,
    /// Debug (gated): hold a worker for `ms` milliseconds.
    DebugSleep {
        /// Hold duration in milliseconds.
        ms: u64,
    },
    /// Debug (gated): panic inside a worker (poisoned-job drill).
    DebugPanic,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description; the caller wraps it in a `bad_request`
/// (or `parse_error`) response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let id = v.get("id").and_then(Json::as_u64).ok_or("missing or invalid 'id'")?;
    let op = v.get("op").and_then(Json::as_str).ok_or("missing 'op'")?;
    let body = match op {
        "compile" => {
            let pipeline_name =
                v.get("pipeline").and_then(Json::as_str).ok_or("compile: missing 'pipeline'")?;
            let pipeline = Pipeline::from_name(pipeline_name).ok_or_else(|| {
                format!(
                    "compile: unknown pipeline '{pipeline_name}' (expected one of {})",
                    Pipeline::ALL.map(|p| p.name()).join(", ")
                )
            })?;
            let priority = match v.get("priority") {
                None => DEFAULT_PRIORITY,
                Some(p) => {
                    let p = p.as_u64().ok_or("compile: 'priority' must be an integer")?;
                    if p > MAX_PRIORITY as u64 {
                        return Err(format!("compile: priority {p} out of range 0–{MAX_PRIORITY}"));
                    }
                    p as Priority
                }
            };
            let source = match (v.get("qasm"), v.get("bench")) {
                (Some(q), None) => CompileSource::Qasm(
                    q.as_str().ok_or("compile: 'qasm' must be a string")?.to_string(),
                ),
                (None, Some(b)) => CompileSource::Bench(
                    b.as_str().ok_or("compile: 'bench' must be a string")?.to_string(),
                ),
                _ => return Err("compile: exactly one of 'qasm' or 'bench' required".into()),
            };
            RequestBody::Compile { source, pipeline, priority }
        }
        "stats" => RequestBody::Stats,
        "snapshot" => RequestBody::Snapshot,
        "compact" => RequestBody::Compact {
            max_idle_gens: match v.get("max_idle_gens") {
                None => None,
                Some(g) => Some(g.as_u64().ok_or("compact: 'max_idle_gens' must be an integer")?),
            },
        },
        "shutdown" => RequestBody::Shutdown,
        "sleep" => RequestBody::DebugSleep {
            ms: v.get("ms").and_then(Json::as_u64).ok_or("sleep: missing 'ms'")?,
        },
        "panic" => RequestBody::DebugPanic,
        other => return Err(format!("unknown op '{other}'")),
    };
    Ok(Request { id, body })
}

/// Builds a successful compile response. `done_seq` is the service's
/// global completion sequence number — the deterministic order handle
/// the stall-isolation tests assert with (warm short-circuits must get
/// lower numbers than the cold solves they overtook).
pub fn compile_response(
    id: u64,
    fingerprint: u128,
    metrics: &Metrics,
    coalesced: bool,
    done_seq: u64,
) -> Json {
    Json::obj(vec![
        ("id", Json::num_u64(id)),
        ("ok", Json::Bool(true)),
        ("op", Json::str("compile")),
        ("fingerprint", Json::str(format!("{fingerprint:032x}"))),
        ("count_2q", Json::num_u64(metrics.count_2q as u64)),
        ("depth_2q", Json::num_u64(metrics.depth_2q as u64)),
        ("duration_g", Json::Num(metrics.duration)),
        ("coalesced", Json::Bool(coalesced)),
        ("done_seq", Json::num_u64(done_seq)),
    ])
}

/// Builds a plain success acknowledgement for `op`.
pub fn ok_response(id: u64, op: &str) -> Json {
    Json::obj(vec![
        ("id", Json::num_u64(id)),
        ("ok", Json::Bool(true)),
        ("op", Json::str(op)),
    ])
}

/// Builds an error response. `code` is machine-matchable (see module
/// docs); `detail` is free text.
pub fn error_response(id: u64, code: &str, detail: impl Into<String>) -> Json {
    Json::obj(vec![
        ("id", Json::num_u64(id)),
        ("ok", Json::Bool(false)),
        ("error", Json::str(code)),
        ("detail", Json::str(detail.into())),
    ])
}

/// Point-in-time service-level counters (the queue/coalescing half of a
/// [`StatsSnapshot`]; cache and store counters ride alongside).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs admitted (queued or coalesced).
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed (panicking pipeline, failing debug op).
    pub failed: u64,
    /// Requests answered by joining an in-flight identical job.
    pub coalesced: u64,
    /// Requests rejected because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Queued jobs dropped because every waiter disconnected before a
    /// worker claimed them (the compile never ran).
    pub cancelled: u64,
    /// Store snapshots (plain saves and compactions) taken.
    pub snapshots: u64,
    /// Jobs queued right now (gauge, not a counter).
    pub queue_depth: u64,
}

/// Transit counters of one pipeline ring, as reported in the `stages`
/// member of the `stats` JSON. `dequeued` counts every entry that left
/// the ring — claimed by a stage worker or removed by cancellation — so
/// `enqueued == dequeued + depth` always holds at a quiescent snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCounters {
    /// Entries accepted into the ring.
    pub enqueued: u64,
    /// Entries that left the ring (claimed or cancelled).
    pub dequeued: u64,
    /// Entries resident right now (gauge).
    pub depth: u64,
    /// Total in-ring residence of claimed entries, microseconds
    /// (informational wall-clock — never CI-asserted).
    pub wait_us: u64,
}

/// Per-stage counters of the pipelined service core: the three rings'
/// transit counters plus the stage-transition scalars. The load-bearing
/// deterministic invariants (what the stall-isolation test and the mixed
/// servebench tier assert): a warm workload moves `lookup_hits` and
/// **not** `solve_claimed`; `delivered == completed + failed`; and every
/// admitted compile job ends in exactly one of `lookup_hits`,
/// `lookup_misses`, or `cancelled`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// The submission ring (everything submitted lands here first).
    pub submission: RingCounters,
    /// The solve ring (true misses and debug ops only).
    pub solve: RingCounters,
    /// The completion ring (warm hits + solved jobs, FIFO to delivery).
    pub completion: RingCounters,
    /// Compile jobs the lookup stage short-circuited on a warm pool hit
    /// (these never entered the solve stage).
    pub lookup_hits: u64,
    /// Compile jobs the lookup stage forwarded to the solve ring.
    pub lookup_misses: u64,
    /// Jobs (of any kind) claimed by a solve worker.
    pub solve_claimed: u64,
    /// Completions the dispatcher delivered.
    pub delivered: u64,
}

/// Counters of the shared-memory cache tier (the cross-daemon segment).
/// The CI-asserted invariant: a daemon whose whole workload was solved
/// by a peer on the same segment shows `hits > 0` and `solve_claimed ==
/// 0` — warm across processes with zero duplicate solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCounters {
    /// Lookup-stage probes answered by the shared segment (each is also
    /// a `lookup_hits` warm short-circuit; `hits <= lookup_hits`).
    pub hits: u64,
    /// Entries this daemon newly appended to the segment.
    pub published: u64,
    /// Publishes that found the entry already present (a peer — or an
    /// earlier pass — won the race; the common case for a warm pool).
    pub duplicates: u64,
    /// Publishes rejected because the segment was full.
    pub full_rejects: u64,
    /// Entries seeded into the local pools from the segment at startup.
    pub seeded: u64,
    /// Entries resident in the segment right now (gauge).
    pub entries: u64,
    /// The segment's GC generation clock (gauge).
    pub generation: u64,
}

/// Everything the `stats` op reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Service-level queue/coalescing counters.
    pub service: ServiceCounters,
    /// Per-stage pipeline counters.
    pub stages: StageCounters,
    /// Compile-cache pool counters.
    pub cache: CompileCacheStats,
    /// Store counters (`None` when the service runs without a store).
    pub store: Option<StoreStats>,
    /// Shared-segment counters (`None` when no segment is attached).
    pub shared: Option<SharedCounters>,
}

fn solver_stats_json(s: &SolverStats) -> Json {
    Json::obj(vec![
        ("solves", Json::num_u64(s.solves)),
        ("failures", Json::num_u64(s.failures)),
        ("evals", Json::num_u64(s.evals)),
        ("verifies", Json::num_u64(s.verifies)),
        ("curve_points", Json::num_u64(s.curve_points)),
        ("newton_starts", Json::num_u64(s.newton_starts)),
        ("newton_iters", Json::num_u64(s.newton_iters)),
        ("boundary_roots", Json::num_u64(s.boundary_roots)),
        ("interior_roots", Json::num_u64(s.interior_roots)),
        ("early_rejects", Json::num_u64(s.early_rejects)),
        ("degenerate_targets", Json::num_u64(s.degenerate_targets)),
    ])
}

fn solver_stats_from(v: &Json) -> Result<SolverStats, String> {
    let f = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"));
    Ok(SolverStats {
        solves: f("solves")?,
        failures: f("failures")?,
        evals: f("evals")?,
        verifies: f("verifies")?,
        curve_points: f("curve_points")?,
        newton_starts: f("newton_starts")?,
        newton_iters: f("newton_iters")?,
        boundary_roots: f("boundary_roots")?,
        interior_roots: f("interior_roots")?,
        early_rejects: f("early_rejects")?,
        degenerate_targets: f("degenerate_targets")?,
    })
}

fn ring_counters_json(r: &RingCounters) -> Json {
    Json::obj(vec![
        ("enqueued", Json::num_u64(r.enqueued)),
        ("dequeued", Json::num_u64(r.dequeued)),
        ("depth", Json::num_u64(r.depth)),
        ("wait_us", Json::num_u64(r.wait_us)),
    ])
}

fn ring_counters_from(v: &Json) -> Result<RingCounters, String> {
    let f = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"));
    Ok(RingCounters {
        enqueued: f("enqueued")?,
        dequeued: f("dequeued")?,
        depth: f("depth")?,
        wait_us: f("wait_us")?,
    })
}

fn stage_counters_json(s: &StageCounters) -> Json {
    Json::obj(vec![
        ("submission", ring_counters_json(&s.submission)),
        ("solve", ring_counters_json(&s.solve)),
        ("completion", ring_counters_json(&s.completion)),
        ("lookup_hits", Json::num_u64(s.lookup_hits)),
        ("lookup_misses", Json::num_u64(s.lookup_misses)),
        ("solve_claimed", Json::num_u64(s.solve_claimed)),
        ("delivered", Json::num_u64(s.delivered)),
    ])
}

fn stage_counters_from(v: &Json) -> Result<StageCounters, String> {
    let f = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"));
    Ok(StageCounters {
        submission: ring_counters_from(v.get("submission").ok_or("missing 'submission'")?)?,
        solve: ring_counters_from(v.get("solve").ok_or("missing 'solve'")?)?,
        completion: ring_counters_from(v.get("completion").ok_or("missing 'completion'")?)?,
        lookup_hits: f("lookup_hits")?,
        lookup_misses: f("lookup_misses")?,
        solve_claimed: f("solve_claimed")?,
        delivered: f("delivered")?,
    })
}

fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::num_u64(s.hits)),
        ("misses", Json::num_u64(s.misses)),
        ("inserts", Json::num_u64(s.inserts)),
        ("evictions", Json::num_u64(s.evictions)),
    ])
}

fn cache_stats_from(v: &Json) -> Result<CacheStats, String> {
    let f = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"));
    Ok(CacheStats {
        hits: f("hits")?,
        misses: f("misses")?,
        inserts: f("inserts")?,
        evictions: f("evictions")?,
    })
}

impl StatsSnapshot {
    /// Serializes every counter (the `stats` member of a stats response).
    pub fn to_json(&self) -> Json {
        let sc = &self.service;
        let mut members = vec![
            (
                "service",
                Json::obj(vec![
                    ("submitted", Json::num_u64(sc.submitted)),
                    ("completed", Json::num_u64(sc.completed)),
                    ("failed", Json::num_u64(sc.failed)),
                    ("coalesced", Json::num_u64(sc.coalesced)),
                    ("rejected_queue_full", Json::num_u64(sc.rejected_queue_full)),
                    ("cancelled", Json::num_u64(sc.cancelled)),
                    ("snapshots", Json::num_u64(sc.snapshots)),
                    ("queue_depth", Json::num_u64(sc.queue_depth)),
                ]),
            ),
            ("stages", stage_counters_json(&self.stages)),
            (
                "cache",
                Json::obj(vec![
                    ("programs", cache_stats_json(&self.cache.programs)),
                    ("synthesis", cache_stats_json(&self.cache.synthesis)),
                    ("pulses", cache_stats_json(&self.cache.pulses)),
                    ("solver", solver_stats_json(&self.cache.solver)),
                ]),
            ),
        ];
        if let Some(st) = &self.store {
            members.push((
                "store",
                Json::obj(vec![
                    ("loaded_entries", Json::num_u64(st.loaded_entries)),
                    ("saved_entries", Json::num_u64(st.saved_entries)),
                    ("rejected", Json::num_u64(st.rejected)),
                    ("compactions", Json::num_u64(st.compactions)),
                    ("gc_dropped", Json::num_u64(st.gc_dropped)),
                ]),
            ));
        }
        if let Some(sh) = &self.shared {
            members.push((
                "shared",
                Json::obj(vec![
                    ("hits", Json::num_u64(sh.hits)),
                    ("published", Json::num_u64(sh.published)),
                    ("duplicates", Json::num_u64(sh.duplicates)),
                    ("full_rejects", Json::num_u64(sh.full_rejects)),
                    ("seeded", Json::num_u64(sh.seeded)),
                    ("entries", Json::num_u64(sh.entries)),
                    ("generation", Json::num_u64(sh.generation)),
                ]),
            ));
        }
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a stats JSON back into counters — the inverse of
    /// [`StatsSnapshot::to_json`], used by the client's assertion flags
    /// and pinned by the round-trip test.
    ///
    /// # Errors
    ///
    /// A description of the first missing/invalid member.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let sv = v.get("service").ok_or("missing 'service'")?;
        let f = |k: &str| sv.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"));
        let service = ServiceCounters {
            submitted: f("submitted")?,
            completed: f("completed")?,
            failed: f("failed")?,
            coalesced: f("coalesced")?,
            rejected_queue_full: f("rejected_queue_full")?,
            cancelled: f("cancelled")?,
            snapshots: f("snapshots")?,
            queue_depth: f("queue_depth")?,
        };
        let stages = stage_counters_from(v.get("stages").ok_or("missing 'stages'")?)?;
        let cv = v.get("cache").ok_or("missing 'cache'")?;
        let cache = CompileCacheStats {
            programs: cache_stats_from(cv.get("programs").ok_or("missing 'programs'")?)?,
            synthesis: cache_stats_from(cv.get("synthesis").ok_or("missing 'synthesis'")?)?,
            pulses: cache_stats_from(cv.get("pulses").ok_or("missing 'pulses'")?)?,
            solver: solver_stats_from(cv.get("solver").ok_or("missing 'solver'")?)?,
        };
        let store = match v.get("store") {
            None => None,
            Some(st) => {
                let f = |k: &str| {
                    st.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"))
                };
                Some(StoreStats {
                    loaded_entries: f("loaded_entries")?,
                    saved_entries: f("saved_entries")?,
                    rejected: f("rejected")?,
                    compactions: f("compactions")?,
                    gc_dropped: f("gc_dropped")?,
                })
            }
        };
        let shared = match v.get("shared") {
            None => None,
            Some(sh) => {
                let f = |k: &str| {
                    sh.get(k).and_then(Json::as_u64).ok_or(format!("missing counter '{k}'"))
                };
                Some(SharedCounters {
                    hits: f("hits")?,
                    published: f("published")?,
                    duplicates: f("duplicates")?,
                    full_rejects: f("full_rejects")?,
                    seeded: f("seeded")?,
                    entries: f("entries")?,
                    generation: f("generation")?,
                })
            }
        };
        Ok(StatsSnapshot { service, stages, cache, store, shared })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_compile_requests() {
        let r = parse_request(
            r#"{"id":3,"op":"compile","pipeline":"reqisc-eff","qasm":"qubits 1\nh 0\n"}"#,
        )
        .expect("parse");
        assert_eq!(r.id, 3);
        match r.body {
            RequestBody::Compile { source: CompileSource::Qasm(q), pipeline, priority } => {
                assert_eq!(q, "qubits 1\nh 0\n");
                assert_eq!(pipeline, Pipeline::ReqiscEff);
                assert_eq!(priority, DEFAULT_PRIORITY);
            }
            other => panic!("wrong body {other:?}"),
        }
        let r = parse_request(
            r#"{"id":4,"op":"compile","pipeline":"qiskit","bench":"alu_v0","priority":9}"#,
        )
        .expect("parse");
        assert!(matches!(
            r.body,
            RequestBody::Compile { source: CompileSource::Bench(_), priority: 9, .. }
        ));
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            "not json",
            r#"{"op":"stats"}"#,                                        // no id
            r#"{"id":1}"#,                                              // no op
            r#"{"id":1,"op":"noop"}"#,                                  // unknown op
            r#"{"id":1,"op":"compile","pipeline":"nope","bench":"x"}"#, // bad pipeline
            r#"{"id":1,"op":"compile","pipeline":"qiskit"}"#,           // no source
            r#"{"id":1,"op":"compile","pipeline":"qiskit","bench":"x","qasm":"y"}"#, // both
            r#"{"id":1,"op":"compile","pipeline":"qiskit","bench":"x","priority":12}"#, // range
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn stats_snapshot_roundtrips_all_counters() {
        let snap = StatsSnapshot {
            service: ServiceCounters {
                submitted: 10,
                completed: 8,
                failed: 1,
                coalesced: 3,
                rejected_queue_full: 2,
                cancelled: 5,
                snapshots: 4,
                queue_depth: 1,
            },
            stages: StageCounters {
                submission: RingCounters { enqueued: 10, dequeued: 9, depth: 1, wait_us: 120 },
                solve: RingCounters { enqueued: 6, dequeued: 6, depth: 0, wait_us: 90 },
                completion: RingCounters { enqueued: 9, dequeued: 9, depth: 0, wait_us: 15 },
                lookup_hits: 3,
                lookup_misses: 6,
                solve_claimed: 6,
                delivered: 9,
            },
            cache: CompileCacheStats {
                programs: CacheStats { hits: 5, misses: 3, inserts: 3, evictions: 1 },
                synthesis: CacheStats { hits: 50, misses: 30, inserts: 30, evictions: 0 },
                pulses: CacheStats { hits: 7, misses: 2, inserts: 2, evictions: 0 },
                solver: SolverStats {
                    solves: 2,
                    failures: 0,
                    evals: 900,
                    verifies: 12,
                    curve_points: 40,
                    newton_starts: 6,
                    newton_iters: 55,
                    boundary_roots: 1,
                    interior_roots: 1,
                    early_rejects: 3,
                    degenerate_targets: 1,
                },
            },
            store: Some(StoreStats {
                loaded_entries: 100,
                saved_entries: 120,
                rejected: 0,
                compactions: 2,
                gc_dropped: 17,
            }),
            shared: Some(SharedCounters {
                hits: 11,
                published: 6,
                duplicates: 4,
                full_rejects: 1,
                seeded: 9,
                entries: 15,
                generation: 3,
            }),
        };
        let j = snap.to_json();
        let back = StatsSnapshot::from_json(&Json::parse(&j.emit()).expect("emit parses"))
            .expect("from_json");
        assert_eq!(back, snap, "every counter must survive the wire");
        // Store-less / segment-less snapshots round-trip too.
        let no_store = StatsSnapshot { store: None, shared: None, ..snap };
        let back = StatsSnapshot::from_json(&no_store.to_json()).expect("from_json");
        assert_eq!(back, no_store);
    }
}
