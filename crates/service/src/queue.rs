//! The service's bounded priority job queue. Admission control is
//! strictly non-blocking — [`JobQueue::try_push`] either takes the job or
//! returns [`QueueFull`] immediately, so the accept loop can never be
//! wedged by a slow worker pool — while the worker side blocks on a
//! condvar until a job (or shutdown) arrives.
//!
//! Ordering: higher [`Priority`] first, FIFO within a priority level (a
//! monotone sequence number breaks ties), which makes rejection and
//! completion order deterministic under a single worker — the property
//! the queue-semantics tests pin.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, LockRecover, Mutex};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Job priority: `0` (batch) to `9` (interactive); the default is
/// [`Priority::DEFAULT`]. Higher values are served first.
pub type Priority = u8;

/// Default priority for requests that do not specify one.
pub const DEFAULT_PRIORITY: Priority = 5;

/// Highest accepted priority value.
pub const MAX_PRIORITY: Priority = 9;

/// Rejection: the queue is at capacity. Carries the capacity so callers
/// can report a useful error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Monotone transit counters of one ring, as reported under the `stages`
/// member of the service's `stats` JSON. `dequeued` counts every entry
/// that *left* the ring — popped by a stage worker or removed by ticket
/// cancellation — so `enqueued == dequeued` exactly when the ring is
/// empty. `wait_us` accumulates in-ring residence time (microseconds) of
/// popped entries only; it is informational (wall-clock) and never
/// CI-asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Entries accepted into the ring.
    pub enqueued: u64,
    /// Entries that left the ring (popped or cancelled).
    pub dequeued: u64,
    /// Total in-ring residence of popped entries, microseconds.
    pub wait_us: u64,
}

#[derive(Default)]
struct RingCounters {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    wait_us: AtomicU64,
}

impl RingCounters {
    fn snapshot(&self) -> RingStats {
        RingStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of a non-blocking [`JobQueue::try_pop`].
pub enum TryPop<T> {
    /// A job, with the (possibly boosted) priority it was queued at.
    Job(T, Priority),
    /// Nothing queued right now; the queue is still open.
    Empty,
    /// Closed and drained — the stage-worker exit signal.
    Closed,
}

struct Entry<T> {
    priority: Priority,
    seq: u64,
    at: Instant,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; within a priority, the *lower*
        // sequence number (earlier submission) must surface first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
    seq: u64,
}

/// A bounded, closable priority queue (see the module docs).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    counters: RingCounters,
}

impl<T> JobQueue<T> {
    /// An empty queue admitting at most `capacity` queued jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "degenerate queue capacity");
        Self {
            state: Mutex::new(State { heap: BinaryHeap::new(), closed: false, seq: 0 }),
            available: Condvar::new(),
            capacity,
            counters: RingCounters::default(),
        }
    }

    /// Snapshot of this ring's transit counters (see [`RingStats`]).
    pub fn ring_stats(&self) -> RingStats {
        self.counters.snapshot()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking admission: enqueues `item` or rejects immediately.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] at capacity; also when the queue is closed (a
    /// draining service admits nothing new).
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), QueueFull> {
        let mut st = self.state.lock_recover();
        if st.closed || st.heap.len() >= self.capacity {
            return Err(QueueFull { capacity: self.capacity });
        }
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(Entry { priority, seq, at: Instant::now(), item });
        drop(st);
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    fn record_pop(&self, at: Instant) {
        self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
        self.counters.wait_us.fetch_add(at.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// Blocking worker pop: returns the highest-priority job, waiting for
    /// one if none is queued. Returns `None` once the queue is closed
    /// *and* drained — the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock_recover();
        loop {
            if let Some(e) = st.heap.pop() {
                drop(st);
                self.record_pop(e.at);
                return Some(e.item);
            }
            if st.closed {
                return None;
            }
            st = crate::sync::wait_recover(&self.available, st);
        }
    }

    /// Non-blocking pop for a stage worker that must hold another lock
    /// across the claim (the pipeline's lookup stage holds the inflight
    /// map): returns the job *with the priority it was queued at* so the
    /// claimer can forward it downstream at the same priority, or reports
    /// [`TryPop::Empty`] / [`TryPop::Closed`] without waiting.
    pub fn try_pop(&self) -> TryPop<T> {
        let mut st = self.state.lock_recover();
        if let Some(e) = st.heap.pop() {
            drop(st);
            self.record_pop(e.at);
            return TryPop::Job(e.item, e.priority);
        }
        if st.closed {
            TryPop::Closed
        } else {
            TryPop::Empty
        }
    }

    /// Blocks until the queue is non-empty or closed (without popping) —
    /// the companion a [`JobQueue::try_pop`] loop parks on once it has
    /// released whatever other lock it held across the claim.
    pub fn wait_nonempty(&self) {
        let mut st = self.state.lock_recover();
        while st.heap.is_empty() && !st.closed {
            st = crate::sync::wait_recover(&self.available, st);
        }
    }

    /// Raises the priority of the first queued entry matching `pred`
    /// (only upward — a lower `priority` leaves the entry untouched).
    /// Returns whether an entry was re-prioritized; `false` also covers
    /// "already popped by a worker". The boosted entry keeps its original
    /// sequence number, so it still sorts FIFO-fair among its new peers.
    /// O(n) heap rebuild under the lock — queues are small by
    /// construction (bounded capacity).
    pub fn boost(&self, pred: impl Fn(&T) -> bool, priority: Priority) -> bool {
        let mut st = self.state.lock_recover();
        let mut entries: Vec<Entry<T>> = std::mem::take(&mut st.heap).into_vec();
        let mut boosted = false;
        for e in &mut entries {
            if !boosted && e.priority < priority && pred(&e.item) {
                e.priority = priority;
                boosted = true;
            }
        }
        st.heap = entries.into();
        boosted
    }

    /// Removes the first queued entry matching `pred`, returning whether
    /// one was removed (`false` also covers "already popped by a
    /// worker"). Used by ticket cancellation: a job whose waiters all
    /// disconnected must not occupy a worker or a queue slot. O(n) heap
    /// rebuild under the lock — queues are small by construction.
    pub fn remove_first(&self, pred: impl Fn(&T) -> bool) -> bool {
        let mut st = self.state.lock_recover();
        let entries: Vec<Entry<T>> = std::mem::take(&mut st.heap).into_vec();
        let mut removed = false;
        let kept: Vec<Entry<T>> = entries
            .into_iter()
            .filter(|e| {
                if !removed && pred(&e.item) {
                    removed = true;
                    false
                } else {
                    true
                }
            })
            .collect();
        st.heap = kept.into();
        drop(st);
        if removed {
            // A cancelled entry left the ring: count the departure (but
            // no wait time — it was never claimed by a worker).
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Closes the queue: future pushes reject, workers drain what is
    /// queued and then see `None`.
    pub fn close(&self) {
        self.state.lock_recover().closed = true;
        self.available.notify_all();
    }

    /// Queued (not yet popped) job count.
    pub fn len(&self) -> usize {
        self.state.lock_recover().heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_fifo_order() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.try_push(1, 5).unwrap();
        q.try_push(2, 5).unwrap();
        q.try_push(3, 9).unwrap();
        q.try_push(4, 0).unwrap();
        q.try_push(5, 9).unwrap();
        q.close();
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![3, 5, 1, 2, 4], "priority desc, FIFO within");
    }

    #[test]
    fn rejects_at_capacity_and_after_close() {
        let q: JobQueue<u32> = JobQueue::new(2);
        q.try_push(1, 5).unwrap();
        q.try_push(2, 5).unwrap();
        assert_eq!(q.try_push(3, 9), Err(QueueFull { capacity: 2 }), "full rejects even high-pri");
        assert_eq!(q.pop(), Some(1));
        q.try_push(3, 5).unwrap();
        q.close();
        assert!(q.try_push(4, 5).is_err(), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed + drained");
    }

    #[test]
    fn remove_first_drops_one_matching_entry() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.try_push(1, 5).unwrap();
        q.try_push(2, 5).unwrap();
        q.try_push(2, 9).unwrap();
        assert!(q.remove_first(|&v| v == 2), "queued entry must be removable");
        assert!(!q.remove_first(|&v| v == 7), "absent entries report false");
        assert_eq!(q.len(), 2);
        q.close();
        // Exactly one of the two v=2 entries was removed; order intact.
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert!(order == vec![1, 2] || order == vec![2, 1], "got {order:?}");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q: std::sync::Arc<JobQueue<u32>> = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        q.try_push(7, 5).unwrap();
        q.try_push(8, 5).unwrap();
        // Give the worker a moment to drain, then close to release it.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let got = h.join().unwrap();
        assert_eq!(got, vec![7, 8]);
    }
}
