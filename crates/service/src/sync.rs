//! The service stack's single sync-import surface, backed by
//! `reqisc-sched`.
//!
//! Every `Mutex`, `Condvar`, atomic and `thread::spawn` in this crate
//! must come from here (or `reqisc_sched` directly) — the
//! `reqisc-lint` `sync-shim` rule denies raw `std::sync` /
//! `std::thread::spawn` usage in the service sources. In normal builds
//! these names are zero-cost re-exports of `std`; under
//! `--features sched-model` they route through the cooperative
//! model-checking scheduler, which is what lets the model tests in
//! `tests/sched_model.rs` explore every bounded interleaving of the
//! pipeline's sync sites.
//!
//! The `*_recover` helpers carry the poisoning-tolerance contract the
//! request path relies on: a panicking compile job is isolated by
//! `catch_unwind` in the worker loop, but any *other* panic while a
//! service lock is held poisons the mutex — and with plain
//! `.expect("poisoned")` every later request touching that lock
//! panics too, silently killing worker and connection threads until
//! the daemon is a zombie (the `panic-path` lint rule forbids that
//! pattern). Recovery is sound here because every structure guarded
//! by these locks stays structurally valid at any panic point: the
//! queue swaps its heap out with `mem::take` and reassigns a rebuilt
//! vector, the inflight map and connection list are plain collections
//! whose individual operations are atomic with respect to panics, and
//! the store lock guards `()`. Worst case after a recovered poisoning
//! is a *lost entry* (a job that never ran), which the protocol
//! already surfaces as an error response — strictly better than a
//! creeping thread die-off.

pub use reqisc_sched::sync::{
    atomic, wait_recover, wait_timeout_recover, Condvar, LockRecover, Mutex, MutexGuard,
    WaitTimeoutResult,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_from_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = reqisc_sched::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_recover(), 7, "value still reachable after poisoning");
        *m.lock_recover() = 9;
        assert_eq!(*m.lock_recover(), 9);
    }

    #[test]
    fn wait_timeout_recover_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock_recover();
        let (_g, res) =
            wait_timeout_recover(&cv, g, std::time::Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
