//! Poisoning-tolerant lock helpers for the request path.
//!
//! A panicking compile job is already isolated by `catch_unwind` in the
//! worker loop, but any *other* panic while one of the service's locks
//! is held (allocation failure mid-push, a bug in a predicate closure)
//! poisons the mutex — and with plain `.expect("poisoned")` every later
//! request touching that lock panics too, silently killing worker and
//! connection threads one by one until the daemon is a zombie. The
//! `reqisc-lint` `panic-path` rule forbids that pattern.
//!
//! Recovery is sound here because every structure guarded by these locks
//! stays structurally valid at any panic point: the queue swaps its heap
//! out with `mem::take` and reassigns a rebuilt vector, the inflight map
//! and connection list are plain collections whose individual operations
//! are atomic with respect to panics, and the store lock guards `()`.
//! Worst case after a recovered poisoning is a *lost entry* (a job that
//! never ran), which the protocol already surfaces as an error response
//! — strictly better than a creeping thread die-off.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Extension trait: acquire a [`Mutex`], recovering the guard from a
/// poisoned lock instead of panicking.
pub trait LockRecover<T> {
    /// Locks, treating poisoning as recoverable.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`] with the same poisoning tolerance.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_from_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_recover(), 7, "value still reachable after poisoning");
        *m.lock_recover() = 9;
        assert_eq!(*m.lock_recover(), 9);
    }
}
