//! A minimal JSON value type with a recursive-descent parser and an
//! emitter — the wire format of the service protocol. Hand-rolled because
//! the build environment vendors no serde; the subset implemented is the
//! full JSON grammar (objects, arrays, strings with escapes incl.
//! `\uXXXX`, numbers, booleans, null), which is all a line-delimited
//! protocol needs.
//!
//! Numbers are carried as `f64`. Every counter the protocol transports is
//! far below 2⁵³, so round-trips are exact; 128-bit fingerprints travel
//! as hex *strings* for the same reason.

/// A JSON value. Object member order is preserved (emission is
/// deterministic, which the protocol tests rely on).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered members).
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Emits compact JSON (no whitespace).
    pub fn emit(&self) -> String {
        let mut s = String::new();
        self.emit_into(&mut s);
        s
    }

    fn emit_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => emit_number(*v, s),
            Json::Str(t) => emit_string(t, s),
            Json::Arr(items) => {
                s.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    it.emit_into(s);
                }
                s.push(']');
            }
            Json::Obj(members) => {
                s.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    emit_string(k, s);
                    s.push(':');
                    v.emit_into(s);
                }
                s.push('}');
            }
        }
    }

    /// Object member lookup (None for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractional
    /// and negative values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor: an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a number from a `u64` counter.
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Convenience constructor: a string.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }
}

/// Integers emit without a decimal point (counters, ids); everything else
/// uses Rust's shortest-roundtrip float formatting.
fn emit_number(v: f64, s: &mut String) {
    use std::fmt::Write as _;
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.2e18 {
        let _ = write!(s, "{}", v as i64);
    } else if v.is_finite() {
        let _ = write!(s, "{v}");
    } else {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        s.push_str("null");
    }
}

fn emit_string(t: &str, s: &mut String) {
    use std::fmt::Write as _;
    s.push('"');
    for ch in t.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        // lint:allow(panic-path, pos is clamped to bytes.len() by the scanner)
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                // lint:allow(panic-path, start..pos only advances past peek()-checked bytes)
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        c => return Err(self.err(format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // lint:allow(panic-path, pos+4 <= len checked immediately above)
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // lint:allow(panic-path, start..pos only advances past peek()-checked bytes)
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let src = r#"{"id":7,"op":"compile","qasm":"qubits 2\ncx 0 1\n","pri":0.5,"flags":[true,false,null],"nested":{"k":"v\u00e9"}}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("qasm").and_then(Json::as_str), Some("qubits 2\ncx 0 1\n"));
        assert_eq!(v.get("pri").and_then(Json::as_f64), Some(0.5));
        let back = Json::parse(&v.emit()).expect("reparse");
        assert_eq!(v, back, "emit → parse must be the identity");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{\"a\":1}x", "01x",
            "\"bad \\q escape\"", "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::num_u64(12345).emit(), "12345");
        assert_eq!(Json::Num(1.5).emit(), "1.5");
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v.as_str(), Some("😀"));
    }
}
