//! The pipeline's completion ring: an unbounded, closable FIFO that the
//! lookup stage (warm short-circuits) and the solve workers (finished
//! cold jobs) both feed, and that the single dispatcher thread drains in
//! arrival order. FIFO delivery is what makes the global `done_seq`
//! assignment deterministic: the dispatcher stamps sequence numbers at
//! pop time, so completion order *is* delivery order by construction.
//!
//! Unbounded is deliberate — admission control already bounds the number
//! of jobs in the system (the service's `in_system` gauge never exceeds
//! the configured queue capacity), so ring occupancy is bounded by the
//! same limit and a producer can never block on a full ring while
//! holding the inflight lock.

use crate::queue::RingStats;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, LockRecover, Mutex};
use std::collections::VecDeque;
use std::time::Instant;

struct RingState<T> {
    items: VecDeque<(T, Instant)>,
    closed: bool,
}

/// An unbounded, closable FIFO handoff ring (see the module docs).
pub struct FifoRing<T> {
    fifo: Mutex<RingState<T>>,
    ready: Condvar,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    wait_us: AtomicU64,
}

impl<T> Default for FifoRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FifoRing<T> {
    /// An empty, open ring.
    pub fn new() -> Self {
        Self {
            fifo: Mutex::new(RingState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
        }
    }

    /// Posts one completion. Returns `false` (dropping `item`) if the
    /// ring is already closed — unreachable under the service's shutdown
    /// order, which closes the ring only after every producing stage has
    /// been joined, but defended so a misordered caller degrades to a
    /// lost completion instead of a panic.
    pub fn push_completion(&self, item: T) -> bool {
        let mut st = self.fifo.lock_recover();
        if st.closed {
            return false;
        }
        st.items.push_back((item, Instant::now()));
        drop(st);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.ready.notify_one();
        true
    }

    /// Blocking consumer pop in strict FIFO order. Returns `None` once
    /// the ring is closed *and* drained — the dispatcher-exit signal.
    pub fn pop_completion(&self) -> Option<T> {
        let mut st = self.fifo.lock_recover();
        loop {
            if let Some((item, at)) = st.items.pop_front() {
                drop(st);
                self.dequeued.fetch_add(1, Ordering::Relaxed);
                self.wait_us.fetch_add(at.elapsed().as_micros() as u64, Ordering::Relaxed);
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = crate::sync::wait_recover(&self.ready, st);
        }
    }

    /// Closes the ring: future pushes report `false`, the consumer
    /// drains what is posted and then sees `None`.
    pub fn close(&self) {
        self.fifo.lock_recover().closed = true;
        self.ready.notify_all();
    }

    /// Completions posted but not yet dispatched.
    pub fn len(&self) -> usize {
        self.fifo.lock_recover().items.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of this ring's transit counters (see [`RingStats`]).
    pub fn ring_stats(&self) -> RingStats {
        RingStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_close_semantics() {
        let r: FifoRing<u32> = FifoRing::new();
        assert!(r.push_completion(1));
        assert!(r.push_completion(2));
        assert!(r.push_completion(3));
        assert_eq!(r.len(), 3);
        r.close();
        assert!(!r.push_completion(4), "closed ring drops new completions");
        assert_eq!(r.pop_completion(), Some(1));
        assert_eq!(r.pop_completion(), Some(2));
        assert_eq!(r.pop_completion(), Some(3));
        assert_eq!(r.pop_completion(), None, "closed + drained");
        let s = r.ring_stats();
        assert_eq!((s.enqueued, s.dequeued), (3, 3));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let r: std::sync::Arc<FifoRing<u32>> = std::sync::Arc::new(FifoRing::new());
        let r2 = r.clone();
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = r2.pop_completion() {
                got.push(v);
            }
            got
        });
        assert!(r.push_completion(7));
        assert!(r.push_completion(8));
        while !r.is_empty() {
            std::thread::yield_now();
        }
        r.close();
        assert_eq!(h.join().unwrap(), vec![7, 8]);
    }
}
