#![warn(missing_docs)]
//! # reqisc-service
//!
//! The long-running compile-service subsystem: a resident daemon
//! (`reqiscd`) that accepts jobs over a line-delimited JSON protocol on a
//! Unix domain socket (or stdio), parses QASM / resolves benchsuite
//! program names, and drives everything through the shared
//! content-addressed [`reqisc_compiler::CompileCache`] engine — so the
//! ~1000× warm-cache wins of the persistent store reach interactive
//! callers without paying process startup, template-library synthesis,
//! and store cold-load per invocation.
//!
//! The subsystem owns:
//!
//! * a **staged pipeline core** ([`service`]): submission ring → lookup
//!   stage (warm hits short-circuit straight to the completion ring) →
//!   solve ring → solve workers → completion ring → dispatcher, so a
//!   warm hit never queues behind a cold solve;
//! * **bounded priority rings** with non-blocking admission control
//!   ([`queue`], [`ring`]) — overload rejects with `queue_full`, never
//!   stalls the accept loop;
//! * **in-flight request coalescing** keyed by `(circuit content hash,
//!   pipeline, options fingerprint)` — N identical concurrent requests
//!   cost one compile and N responses ([`service`]);
//! * a **solve worker pool** sized like [`reqisc_compiler::Compiler`]'s
//!   `block_threads` (0 = hardware parallelism);
//! * **cache lifecycle management**: store load at startup, periodic and
//!   on-shutdown snapshots, and GC/compaction
//!   ([`reqisc_compiler::CacheStore::compact`]) that ages out entries no
//!   process references anymore;
//! * a **stats** endpoint returning every cache/store/queue counter as
//!   JSON ([`protocol::StatsSnapshot`]).
//!
//! ## Quick start (in-process, stdio transport)
//!
//! ```no_run
//! use reqisc_service::{serve_lines, Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default());
//! let requests = "{\"id\":1,\"op\":\"compile\",\"pipeline\":\"reqisc-eff\",\"qasm\":\"qubits 2\\ncx 0 1\\n\"}\n{\"id\":2,\"op\":\"stats\"}\n";
//! let mut out = Vec::new();
//! serve_lines(&service, requests.as_bytes(), &mut out).unwrap();
//! service.shutdown();
//! println!("{}", String::from_utf8(out).unwrap());
//! ```

pub mod json;
pub mod protocol;
pub mod queue;
pub mod ring;
pub mod server;
pub mod service;
pub mod sync;

pub use json::{Json, JsonError};
pub use protocol::{
    parse_request, CompileSource, Request, RequestBody, RingCounters as StageRingCounters,
    ServiceCounters, SharedCounters, StageCounters, StatsSnapshot,
};
pub use queue::{JobQueue, Priority, QueueFull, RingStats, TryPop, DEFAULT_PRIORITY, MAX_PRIORITY};
pub use ring::FifoRing;
pub use server::{serve_lines, ServeOutcome};
#[cfg(unix)]
pub use server::serve_unix;
pub use service::{
    DebugOp, JobDone, JobResult, Service, ServiceConfig, SnapshotReport, SubmitError, Ticket,
    DEFAULT_SHM_CAPACITY_BYTES,
};

/// The cache-directory environment variable every consumer of the
/// persistent store honours (`reqiscd --cache-dir` defaults to it, and
/// the bench binaries read it through `reqisc_bench`'s delegating
/// helper) — declared once in the [`reqisc_env`] registry; this is the
/// service-local alias.
pub const CACHE_DIR_ENV: &str = reqisc_env::CACHE_DIR.name;

/// Reads [`CACHE_DIR_ENV`] through the registry knob: `None` when unset
/// or empty.
pub fn cache_dir_from_env() -> Option<std::path::PathBuf> {
    reqisc_env::CACHE_DIR.path()
}
