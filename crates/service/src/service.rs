//! The resident compile service: a worker pool draining a bounded
//! priority queue through a shared [`Compiler`], with in-flight request
//! coalescing and persistent-store lifecycle management (periodic and
//! on-shutdown snapshots, optional GC/compaction).
//!
//! ## Coalescing
//!
//! Jobs are keyed by `(circuit content hash, pipeline, options
//! fingerprint)` — exactly the whole-program cache key — so N identical
//! concurrent requests occupy **one** queue slot and one worker: the
//! first submission enqueues, the rest attach to the in-flight entry and
//! all N receive the one result. (A request arriving *after* the job
//! completed is not coalesced; it is a plain program-pool cache hit.)
//! A duplicate hotter than the queued original boosts the queued job to
//! its priority, so coalescing never inverts the priority contract.
//!
//! ## Cancellation
//!
//! A client that disconnects while its job is still queued used to orphan
//! the ticket — harmless, but the compile still ran. Every ticket now
//! carries a waiter guard: dropping the last ticket attached to a queued
//! job removes the job from the queue (freeing its slot for admission)
//! and counts it under `cancelled` in `stats`. A job already claimed by a
//! worker is past cancellation and simply completes with nobody waiting.
//!
//! ## Failure isolation
//!
//! A panicking pipeline (or the gated debug `panic` op) is caught per
//! job: every attached waiter gets an error response, the `failed`
//! counter ticks, and the worker survives to take the next job.

use crate::protocol::{CompileSource, ServiceCounters, StatsSnapshot};
use crate::queue::{JobQueue, Priority, QueueFull};
use crate::sync::LockRecover;
use reqisc_compiler::{
    CacheStore, CompactOutcome, CompileCache, Compiler, LoadOutcome, Pipeline,
};
use reqisc_qcircuit::{parse_bounded, Circuit, ParseLimits};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Service construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker-pool size; `0` = the available hardware parallelism (the
    /// same resolution rule as [`Compiler::block_threads`]).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it reject immediately.
    pub queue_capacity: usize,
    /// Persistent store directory (`None` = in-memory only). The store
    /// is loaded before the first worker starts and flushed on shutdown.
    pub cache_dir: Option<PathBuf>,
    /// Periodic snapshot interval (`None` = on-shutdown only).
    pub snapshot_interval: Option<Duration>,
    /// When set, periodic snapshots (and explicit `compact` requests
    /// without their own threshold) GC entries idle for more than this
    /// many store generations. `None` = snapshots never drop anything.
    pub gc_max_idle_gens: Option<u64>,
    /// Memo-pool shape override `(shards, per-shard capacity)` — the LRU
    /// eviction knob. `None` = the default generous shape (effectively
    /// unbounded; evictions stay 0).
    pub pool_shape: Option<(usize, usize)>,
    /// Accept the debug `sleep`/`panic` ops (tests and drills only).
    pub debug_ops: bool,
    /// Bounds on QASM accepted at the service boundary.
    pub parse_limits: ParseLimits,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            cache_dir: None,
            snapshot_interval: None,
            gc_max_idle_gens: None,
            pool_shape: None,
            debug_ops: false,
            parse_limits: ParseLimits::default(),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (or the service is draining).
    QueueFull(QueueFull),
    /// The request itself is unusable (unknown bench name, QASM parse
    /// failure, over-limit input, gated debug op).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(q) => write!(f, "{q}"),
            SubmitError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished job's payload: the compiled circuit (compile jobs; `None`
/// for debug ops) plus a global completion sequence number (monotone —
/// the queue-semantics tests assert ordering through it).
#[derive(Debug, Clone)]
pub struct JobDone {
    /// The compiled circuit (`None` for debug ops).
    pub circuit: Option<Arc<Circuit>>,
    /// Global completion order (1-based).
    pub done_seq: u64,
}

/// What a waiter receives: the result or the failure message.
pub type JobResult = Result<JobDone, String>;

/// A claim on one submitted job's result. Dropping a ticket without
/// waiting detaches its waiter; when the *last* waiter of a still-queued
/// job detaches, the job is cancelled (see the module docs).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<JobResult>,
    /// True when this submission attached to an already-in-flight
    /// identical job instead of occupying a queue slot.
    pub coalesced: bool,
    /// Detaches this waiter on drop (compile jobs only).
    _guard: Option<WaiterGuard>,
}

impl Ticket {
    /// Blocks until the job finishes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or_else(|_| Err("service terminated before the job ran".into()))
    }
}

/// Removes one waiter from its job's coalesced waiter set on drop; the
/// last waiter out cancels the job if it is still queued. Waiter ids are
/// globally unique, so a guard outliving its job (or racing a same-key
/// resubmission) can never detach someone else's waiter.
struct WaiterGuard {
    inner: Arc<Inner>,
    key: JobKey,
    id: u64,
}

impl std::fmt::Debug for WaiterGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaiterGuard").field("key", &self.key).field("id", &self.id).finish()
    }
}

impl Drop for WaiterGuard {
    fn drop(&mut self) {
        let mut inflight = self.inner.inflight.lock_recover();
        let Some(waiters) = inflight.get_mut(&self.key) else {
            return; // job already completed (or cancelled by a peer)
        };
        waiters.retain(|(id, _)| *id != self.id);
        if !waiters.is_empty() {
            return; // other waiters still want the result
        }
        inflight.remove(&self.key);
        // Last waiter gone: pull the job out of the queue if a worker has
        // not claimed it yet. (A running job is past cancellation and
        // completes normally with nobody listening — that window is
        // unavoidable and harmless.) The inflight lock is deliberately
        // held across the removal — the same inflight→queue order
        // `submit_compile` uses — so a racing same-key resubmission
        // cannot slip a fresh job into the queue between the entry
        // removal and the keyed `remove_first` (which would cancel the
        // *new* job and strand its waiters forever).
        let key = self.key;
        if self
            .inner
            .queue
            .remove_first(|job| matches!(job, Job::Compile { key: k, .. } if *k == key))
        {
            self.inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        drop(inflight);
    }
}

/// In-flight dedup key: identical keys ⇒ identical results, by the same
/// argument that makes the whole-program cache key sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct JobKey {
    circuit: u128,
    pipeline: Pipeline,
    options: u128,
}

enum Job {
    Compile { key: JobKey, circuit: Arc<Circuit>, pipeline: Pipeline },
    Sleep { ms: u64, tx: mpsc::Sender<JobResult> },
    Panic { tx: mpsc::Sender<JobResult> },
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    coalesced: AtomicU64,
    rejected_queue_full: AtomicU64,
    cancelled: AtomicU64,
    snapshots: AtomicU64,
}

struct Inner {
    compiler: Compiler,
    store: Option<CacheStore>,
    /// Serializes save/compact against each other (timer vs. requests vs.
    /// shutdown); the store itself is only torn-write-safe, not
    /// merge-atomic, within one process.
    store_lock: Mutex<()>,
    queue: JobQueue<Job>,
    inflight: Mutex<HashMap<JobKey, Vec<(u64, mpsc::Sender<JobResult>)>>>,
    counters: Counters,
    done_seq: AtomicU64,
    waiter_seq: AtomicU64,
    gc_max_idle_gens: Option<u64>,
    debug_ops: bool,
    parse_limits: ParseLimits,
    benches: OnceLock<HashMap<String, Arc<Circuit>>>,
    /// Set by a protocol `shutdown` request; transport accept loops poll it.
    shutdown_requested: AtomicBool,
    timer_stop: (Mutex<bool>, Condvar),
}

impl Inner {
    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            match job {
                Job::Compile { key, circuit, pipeline } => {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        self.compiler.compile(&circuit, pipeline)
                    }));
                    let done_seq = self.done_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    let result: JobResult = match out {
                        Ok(c) => {
                            self.counters.completed.fetch_add(1, Ordering::Relaxed);
                            Ok(JobDone { circuit: Some(Arc::new(c)), done_seq })
                        }
                        Err(p) => {
                            self.counters.failed.fetch_add(1, Ordering::Relaxed);
                            Err(format!("compile panicked: {}", panic_message(&p)))
                        }
                    };
                    let waiters = self
                        .inflight
                        .lock_recover()
                        .remove(&key)
                        .unwrap_or_default();
                    for (_, tx) in waiters {
                        // A waiter that dropped its ticket is not an error.
                        let _ = tx.send(result.clone());
                    }
                }
                Job::Sleep { ms, tx } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    let done_seq = self.done_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Ok(JobDone { circuit: None, done_seq }));
                }
                Job::Panic { tx } => {
                    // A *real* panic through the same isolation path real
                    // pipeline panics take — the poisoned-job drill.
                    let out = catch_unwind(|| panic!("debug panic op"));
                    debug_assert!(out.is_err());
                    self.done_seq.fetch_add(1, Ordering::Relaxed);
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Err("compile panicked: debug panic op".into()));
                }
            }
        }
    }

    /// One snapshot: a compacting save when GC is configured, else plain.
    fn snapshot(&self, gc_override: Option<u64>) -> std::io::Result<SnapshotReport> {
        let Some(store) = &self.store else {
            return Ok(SnapshotReport::NoStore);
        };
        let _guard = self.store_lock.lock_recover();
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        match gc_override.or(self.gc_max_idle_gens) {
            Some(max_idle) => {
                let o = store.compact(self.compiler.cache(), max_idle)?;
                Ok(SnapshotReport::Compacted(o))
            }
            None => {
                let n = store.save(self.compiler.cache())?;
                Ok(SnapshotReport::Saved { entries: n })
            }
        }
    }
}

/// What one snapshot pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotReport {
    /// The service runs without a persistent store.
    NoStore,
    /// Plain save: `entries` written.
    Saved {
        /// Entries written.
        entries: usize,
    },
    /// Compacting save.
    Compacted(CompactOutcome),
}

fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".into()
    }
}

/// The running service (see module docs). Dropping it shuts down
/// gracefully: drain the queue, join the workers, flush the store.
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
    stopped: AtomicBool,
    startup_load: Option<LoadOutcome>,
}

impl Service {
    /// Starts a service with a freshly built compiler (pre-synthesizing
    /// the template library — the one-time resident cost interactive
    /// callers no longer pay per request).
    pub fn start(config: ServiceConfig) -> Self {
        let compiler = match config.pool_shape {
            Some((shards, cap)) => Compiler::new_with_library_and_cache(
                Compiler::builtin_library(),
                CompileCache::with_shape(shards, cap),
            ),
            None => Compiler::new(),
        };
        Self::start_with_compiler(compiler, config)
    }

    /// Starts a service around an existing compiler — the constructor for
    /// tests (cheap search budgets, shared template libraries) and for
    /// embedders that pre-tune [`Compiler::hs`].
    pub fn start_with_compiler(mut compiler: Compiler, config: ServiceConfig) -> Self {
        // Workers are the parallelism; per-job block batching inside a
        // worker would oversubscribe the pool.
        compiler.block_threads = 1;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let store = config.cache_dir.as_ref().map(CacheStore::new);
        let startup_load = store.as_ref().map(|s| s.load_into(compiler.cache()));
        let inner = Arc::new(Inner {
            compiler,
            store,
            store_lock: Mutex::new(()),
            queue: JobQueue::new(config.queue_capacity),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            done_seq: AtomicU64::new(0),
            waiter_seq: AtomicU64::new(0),
            gc_max_idle_gens: config.gc_max_idle_gens,
            debug_ops: config.debug_ops,
            parse_limits: config.parse_limits,
            benches: OnceLock::new(),
            shutdown_requested: AtomicBool::new(false),
            timer_stop: (Mutex::new(false), Condvar::new()),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        let timer = config.snapshot_interval.map(|interval| {
            let inner = inner.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &inner.timer_stop;
                let mut stopped = lock.lock_recover();
                loop {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        if let Err(e) = inner.snapshot(None) {
                            eprintln!("# reqisc-service: periodic snapshot failed: {e}");
                        }
                    }
                }
            })
        });
        Self {
            inner,
            workers: Mutex::new(handles),
            timer: Mutex::new(timer),
            stopped: AtomicBool::new(false),
            startup_load,
        }
    }

    /// The store-load outcome observed at startup (`None` = no store
    /// configured).
    pub fn startup_load(&self) -> Option<&LoadOutcome> {
        self.startup_load.as_ref()
    }

    /// Resolves a protocol compile source into a circuit: QASM parses
    /// under the configured [`ParseLimits`]; bench names resolve against
    /// the demo-scale benchsuite.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] with a description.
    pub fn resolve_source(&self, source: &CompileSource) -> Result<Arc<Circuit>, SubmitError> {
        match source {
            CompileSource::Qasm(text) => parse_bounded(text, &self.inner.parse_limits)
                .map(Arc::new)
                .map_err(|e| SubmitError::Invalid(format!("qasm: {e}"))),
            CompileSource::Bench(name) => {
                let benches = self.inner.benches.get_or_init(|| {
                    reqisc_benchsuite::suite(reqisc_benchsuite::Scale::Demo)
                        .into_iter()
                        .map(|b| (b.name, Arc::new(b.circuit)))
                        .collect()
                });
                benches
                    .get(name)
                    .cloned()
                    .ok_or_else(|| SubmitError::Invalid(format!("unknown bench program '{name}'")))
            }
        }
    }

    /// Submits one compile job (see the module docs for coalescing and
    /// admission semantics).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when admission control rejects.
    pub fn submit_compile(
        &self,
        circuit: Arc<Circuit>,
        pipeline: Pipeline,
        priority: Priority,
    ) -> Result<Ticket, SubmitError> {
        let key = JobKey {
            circuit: circuit.content_hash(),
            pipeline,
            options: self.inner.compiler.options_fingerprint(),
        };
        let (tx, rx) = mpsc::channel();
        let waiter_id = self.inner.waiter_seq.fetch_add(1, Ordering::Relaxed);
        let guard = Some(WaiterGuard { inner: self.inner.clone(), key, id: waiter_id });
        // The inflight lock spans the queue push so a worker finishing the
        // job (which takes the same lock to collect waiters) can never
        // interleave between "queued" and "registered".
        let mut inflight = self.inner.inflight.lock_recover();
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push((waiter_id, tx));
            // A more urgent duplicate must not wait at the original
            // submission's priority: raise the queued job to match (a
            // no-op if the job already runs or was queued hotter).
            self.inner.queue.boost(
                |job| matches!(job, Job::Compile { key: k, .. } if *k == key),
                priority,
            );
            self.inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Ticket { rx, coalesced: true, _guard: guard });
        }
        match self.inner.queue.try_push(Job::Compile { key, circuit, pipeline }, priority) {
            Ok(()) => {
                inflight.insert(key, vec![(waiter_id, tx)]);
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx, coalesced: false, _guard: guard })
            }
            Err(full) => {
                self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull(full))
            }
        }
    }

    /// Submits a gated debug op (`sleep`/`panic`).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] unless the service was started with
    /// `debug_ops`; [`SubmitError::QueueFull`] on admission rejection.
    pub fn submit_debug(&self, op: DebugOp, priority: Priority) -> Result<Ticket, SubmitError> {
        if !self.inner.debug_ops {
            return Err(SubmitError::Invalid("debug ops are disabled".into()));
        }
        let (tx, rx) = mpsc::channel();
        let job = match op {
            DebugOp::Sleep { ms } => Job::Sleep { ms, tx },
            DebugOp::Panic => Job::Panic { tx },
        };
        match self.inner.queue.try_push(job, priority) {
            Ok(()) => {
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx, coalesced: false, _guard: None })
            }
            Err(full) => {
                self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull(full))
            }
        }
    }

    /// Metrics of a compiled circuit under the evaluation's XY coupling —
    /// what compile responses report.
    pub fn metrics(&self, c: &Circuit) -> reqisc_compiler::Metrics {
        reqisc_compiler::metrics(c, &reqisc_microarch::Coupling::xy(1.0))
    }

    /// Snapshot of every counter the `stats` op reports.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        StatsSnapshot {
            service: ServiceCounters {
                submitted: c.submitted.load(Ordering::Relaxed),
                completed: c.completed.load(Ordering::Relaxed),
                failed: c.failed.load(Ordering::Relaxed),
                coalesced: c.coalesced.load(Ordering::Relaxed),
                rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
                cancelled: c.cancelled.load(Ordering::Relaxed),
                snapshots: c.snapshots.load(Ordering::Relaxed),
                queue_depth: self.inner.queue.len() as u64,
            },
            cache: self.inner.compiler.cache_stats(),
            store: self.inner.store.as_ref().map(|s| s.stats()),
        }
    }

    /// Jobs queued right now (admitted, not yet claimed by a worker).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Forces a store snapshot now (plain save, no GC).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the save.
    pub fn snapshot_now(&self) -> std::io::Result<SnapshotReport> {
        let Some(store) = &self.inner.store else {
            return Ok(SnapshotReport::NoStore);
        };
        let _guard = self.inner.store_lock.lock_recover();
        self.inner.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        let n = store.save(self.inner.compiler.cache())?;
        Ok(SnapshotReport::Saved { entries: n })
    }

    /// Forces a compacting snapshot now. `max_idle_gens = None` uses the
    /// configured default (or 0 — "keep only what this process
    /// referenced" — when none was configured).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the rewrite.
    pub fn compact_now(&self, max_idle_gens: Option<u64>) -> std::io::Result<SnapshotReport> {
        let gens = max_idle_gens.or(self.inner.gc_max_idle_gens).unwrap_or(0);
        self.inner.snapshot(Some(gens))
    }

    /// True once a protocol `shutdown` request has been accepted (the
    /// transport accept loops poll this).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::Acquire)
    }

    /// Marks shutdown as requested (called by the protocol layer).
    pub fn request_shutdown(&self) {
        self.inner.shutdown_requested.store(true, Ordering::Release);
    }

    /// Graceful shutdown: stop admitting, drain the queue, join every
    /// worker and the snapshot timer, then flush the store. Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        self.request_shutdown();
        self.inner.queue.close();
        for h in self.workers.lock_recover().drain(..) {
            let _ = h.join();
        }
        let (lock, cv) = &self.inner.timer_stop;
        *lock.lock_recover() = true;
        cv.notify_all();
        if let Some(h) = self.timer.lock_recover().take() {
            let _ = h.join();
        }
        if let Err(e) = self.inner.snapshot(None) {
            eprintln!("# reqisc-service: shutdown store flush failed: {e}");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The gated debug operations (see [`Service::submit_debug`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugOp {
    /// Hold a worker for `ms` milliseconds.
    Sleep {
        /// Hold duration in milliseconds.
        ms: u64,
    },
    /// Panic inside the worker (exercises per-job isolation).
    Panic,
}
