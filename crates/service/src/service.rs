//! The resident compile service, structured as a staged pipeline
//! (CXLMemUring's async-offload-with-completion-queue idiom applied to
//! compile serving):
//!
//! ```text
//!  submit ──► submission ring ──► lookup stage ──► solve ring ──► solve workers
//!                (bounded,          (probe the       (bounded,      (catch_unwind
//!                 priority)          program pool)    priority)      compile)
//!                                        │ warm hit                     │
//!                                        ▼                              ▼
//!                                   completion ring (FIFO) ◄────────────┘
//!                                        │
//!                                        ▼
//!                                   dispatcher (assigns done_seq, counts
//!                                   completed/failed, wakes the waiters)
//! ```
//!
//! The lookup stage probes the whole-program pool without ever
//! synthesizing or solving (DAXFS's reader-never-blocks-writer
//! discipline): a **warm hit short-circuits straight to the completion
//! ring** and never touches the solve stage, so a warm response can
//! never queue behind a concurrent cold solve. Only true misses cross
//! into the solve ring, where the expensive workers run the pipeline
//! (filling the synthesis/pulse pools that make the *next* miss of the
//! same blocks cheaper). A single dispatcher drains the completion ring
//! in FIFO order, assigns the global `done_seq` at delivery time, and
//! wakes every coalesced waiter — which makes completion order exactly
//! delivery order, deterministically.
//!
//! ## Admission
//!
//! The bounded capacity is enforced by one `in_system` gauge counting
//! jobs admitted but not yet claimed (by a solve worker), warm-served,
//! or cancelled — physically such a job sits in the submission ring, the
//! lookup stage's hand, or the solve ring. Because solve-ring occupancy
//! can never exceed `in_system`, the stage-to-stage transfer can never
//! reject, and the `queue_depth` gauge keeps its pre-pipeline meaning.
//!
//! ## Coalescing
//!
//! Jobs are keyed by `(circuit content hash, pipeline, options
//! fingerprint)` — exactly the whole-program cache key — so N identical
//! concurrent requests occupy **one** admission slot: the first
//! submission enqueues, the rest attach to the in-flight entry and all N
//! receive the one result. (A request arriving *after* the job completed
//! is not coalesced; it is a plain warm hit.) A duplicate hotter than
//! the queued original boosts the queued job — in whichever ring it
//! currently sits — so coalescing never inverts the priority contract.
//!
//! ## Cancellation
//!
//! Every ticket carries a waiter guard: dropping the last ticket
//! attached to a still-ringed job removes the job from its ring
//! (freeing its admission slot) and counts it under `cancelled`. The
//! inflight lock is held across the lookup stage's entire
//! claim-and-route transfer *and* across the guard's removal, so at any
//! instant under that lock a compile job is in exactly one place — the
//! cancellation race between the rings does not exist. A job already
//! claimed by a solve worker (or already warm-served onto the
//! completion ring) is past cancellation and completes with nobody
//! waiting.
//!
//! ## Failure isolation
//!
//! A panicking pipeline (or the gated debug `panic` op) is caught per
//! job in the solve worker: the dispatcher delivers an error to every
//! attached waiter, the `failed` counter ticks, and the worker survives
//! to take the next job.

use crate::protocol::{
    CompileSource, RingCounters, ServiceCounters, SharedCounters, StageCounters, StatsSnapshot,
};
use crate::queue::{JobQueue, Priority, QueueFull, RingStats, TryPop};
use crate::ring::FifoRing;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Condvar, LockRecover, Mutex};
use reqisc_compiler::{
    sharing, CacheStore, CompactOutcome, CompileCache, Compiler, LoadOutcome, Pipeline,
    STORE_FORMAT_VERSION,
};
use reqisc_shmem::Segment;
use reqisc_qcircuit::{parse_bounded, Circuit, ParseLimits};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Service construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Solve-stage worker-pool size; `0` = the available hardware
    /// parallelism (the same resolution rule as
    /// [`Compiler::block_threads`]).
    pub workers: usize,
    /// Bounded admission capacity (jobs in the system, across both
    /// rings); submissions beyond it reject immediately.
    pub queue_capacity: usize,
    /// Persistent store directory (`None` = in-memory only). The store
    /// is loaded before the first worker starts and flushed on shutdown.
    pub cache_dir: Option<PathBuf>,
    /// Periodic snapshot interval (`None` = on-shutdown only).
    pub snapshot_interval: Option<Duration>,
    /// When set, periodic snapshots (and explicit `compact` requests
    /// without their own threshold) GC entries idle for more than this
    /// many store generations. `None` = snapshots never drop anything.
    pub gc_max_idle_gens: Option<u64>,
    /// Memo-pool shape override `(shards, per-shard capacity)` — the LRU
    /// eviction knob. `None` = the default generous shape (effectively
    /// unbounded; evictions stay 0).
    pub pool_shape: Option<(usize, usize)>,
    /// Accept the debug `sleep`/`panic` ops (tests and drills only).
    pub debug_ops: bool,
    /// Bounds on QASM accepted at the service boundary.
    pub parse_limits: ParseLimits,
    /// Lookup-stage worker count (`0` = 1). One is almost always right —
    /// the stage only probes the program pool — but the knob exists for
    /// probe-heavy deployments (`REQISC_SERVE_LOOKUP_WORKERS` at the
    /// daemon/bench level).
    pub lookup_workers: usize,
    /// Artificial delay (milliseconds) a solve worker sleeps before each
    /// *cold compile* it claims — the deterministic stall the
    /// stall-isolation tests inject; debug ops are unaffected. `None`
    /// falls back to the `REQISC_DEBUG_SOLVE_DELAY_MS` env knob (unset
    /// or `0` = no delay).
    pub solve_delay_ms: Option<u64>,
    /// Shared-memory cache segment to attach (`None` = no shared tier).
    /// The lookup stage probes it between the local pool and a cold
    /// solve; solve workers publish every finished program into it, so
    /// every daemon attached to the same file hits instantly.
    pub shm_path: Option<PathBuf>,
    /// Capacity used if the segment file does not exist yet (an
    /// existing valid segment keeps its own).
    pub shm_capacity_bytes: u64,
}

/// Default [`ServiceConfig::shm_capacity_bytes`]: 64 MiB.
pub const DEFAULT_SHM_CAPACITY_BYTES: u64 = 64 << 20;

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            cache_dir: None,
            snapshot_interval: None,
            gc_max_idle_gens: None,
            pool_shape: None,
            debug_ops: false,
            parse_limits: ParseLimits::default(),
            lookup_workers: 1,
            solve_delay_ms: None,
            shm_path: None,
            shm_capacity_bytes: DEFAULT_SHM_CAPACITY_BYTES,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The system is at admission capacity (or the service is draining).
    QueueFull(QueueFull),
    /// The request itself is unusable (unknown bench name, QASM parse
    /// failure, over-limit input, gated debug op).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(q) => write!(f, "{q}"),
            SubmitError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished job's payload: the compiled circuit (compile jobs; `None`
/// for debug ops) plus a global completion sequence number (monotone —
/// the queue-semantics tests assert ordering through it). Assigned by
/// the dispatcher at delivery time, so `done_seq` order *is* delivery
/// order.
#[derive(Debug, Clone)]
pub struct JobDone {
    /// The compiled circuit (`None` for debug ops).
    pub circuit: Option<Arc<Circuit>>,
    /// Global completion order (1-based).
    pub done_seq: u64,
}

/// What a waiter receives: the result or the failure message.
pub type JobResult = Result<JobDone, String>;

/// A claim on one submitted job's result. Dropping a ticket without
/// waiting detaches its waiter; when the *last* waiter of a still-ringed
/// job detaches, the job is cancelled (see the module docs).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<JobResult>,
    /// True when this submission attached to an already-in-flight
    /// identical job instead of occupying an admission slot.
    pub coalesced: bool,
    /// Detaches this waiter on drop (compile jobs only).
    _guard: Option<WaiterGuard>,
}

impl Ticket {
    /// Blocks until the job finishes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or_else(|_| Err("service terminated before the job ran".into()))
    }

    /// Blocks until the job finishes, then reports how many *further*
    /// responses were (erroneously) delivered to this same ticket — the
    /// double-respond detector the pipeline property tests assert stays
    /// zero. Only meaningful once no more completions can arrive (after
    /// [`Service::shutdown`]).
    pub fn wait_counting_duplicates(self) -> (JobResult, usize) {
        let first =
            self.rx.recv().unwrap_or_else(|_| Err("service terminated before the job ran".into()));
        let extras = self.rx.try_iter().count();
        (first, extras)
    }
}

/// Removes one waiter from its job's coalesced waiter set on drop; the
/// last waiter out cancels the job if it still sits in a ring. Waiter
/// ids are globally unique, so a guard outliving its job (or racing a
/// same-key resubmission) can never detach someone else's waiter.
struct WaiterGuard {
    inner: Arc<Inner>,
    key: JobKey,
    id: u64,
}

impl std::fmt::Debug for WaiterGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaiterGuard").field("key", &self.key).field("id", &self.id).finish()
    }
}

impl Drop for WaiterGuard {
    fn drop(&mut self) {
        let mut inflight = self.inner.inflight.lock_recover();
        let Some(waiters) = inflight.get_mut(&self.key) else {
            return; // job already delivered (or cancelled by a peer)
        };
        waiters.retain(|(id, _)| *id != self.id);
        if !waiters.is_empty() {
            return; // other waiters still want the result
        }
        inflight.remove(&self.key);
        // Last waiter gone: pull the job out of whichever ring still
        // holds it. (A job claimed by a solve worker — or already
        // warm-served onto the completion ring — is past cancellation
        // and completes normally with nobody listening; that window is
        // unavoidable and harmless.) The inflight lock is deliberately
        // held across both removals — the same inflight→ring order the
        // lookup stage's transfer and `submit_compile` use — so neither
        // a racing same-key resubmission nor the lookup stage moving the
        // job between rings can slip into the gap: under this lock the
        // job is in exactly one place.
        let key = self.key;
        let is_ours = move |job: &Job| matches!(job, Job::Compile { key: k, .. } if *k == key);
        if self.inner.submission.remove_first(is_ours) || self.inner.solve.remove_first(is_ours)
        {
            self.inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            self.inner.release();
        }
        drop(inflight);
    }
}

/// In-flight dedup key: identical keys ⇒ identical results, by the same
/// argument that makes the whole-program cache key sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct JobKey {
    circuit: u128,
    pipeline: Pipeline,
    options: u128,
}

enum Job {
    Compile { key: JobKey, circuit: Arc<Circuit>, pipeline: Pipeline },
    Sleep { ms: u64, tx: mpsc::Sender<JobResult> },
    Panic { tx: mpsc::Sender<JobResult> },
}

/// Who a posted completion is for.
enum CompletionTarget {
    /// Every waiter registered under this in-flight key.
    Key(JobKey),
    /// The one direct waiter of a debug op.
    Direct(mpsc::Sender<JobResult>),
}

/// One finished (or warm-served) job on its way to the dispatcher.
struct Completion {
    target: CompletionTarget,
    outcome: Result<Option<Arc<Circuit>>, String>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    coalesced: AtomicU64,
    rejected_queue_full: AtomicU64,
    cancelled: AtomicU64,
    snapshots: AtomicU64,
}

/// Service-side tallies of shared-segment traffic. Separate from the
/// segment's own [`reqisc_shmem::SegStats`] on purpose: these count what
/// *this daemon's pipeline* did (deterministic per process, what CI
/// asserts), not every probe any attached process ever made.
#[derive(Default)]
struct SharedAtomics {
    hits: AtomicU64,
    published: AtomicU64,
    duplicates: AtomicU64,
    full_rejects: AtomicU64,
    seeded: AtomicU64,
}

impl SharedAtomics {
    fn absorb(&self, outcome: reqisc_shmem::PublishOutcome) {
        use reqisc_shmem::PublishOutcome::*;
        match outcome {
            Published => self.published.fetch_add(1, Ordering::Relaxed),
            Duplicate => self.duplicates.fetch_add(1, Ordering::Relaxed),
            SegmentFull => self.full_rejects.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Per-stage transit counters (the scalar half of the `stages` member of
/// the `stats` JSON; the rings report their own enqueue/dequeue/wait).
#[derive(Default)]
struct StageAtomics {
    /// Compile jobs the lookup stage short-circuited on a warm pool hit.
    lookup_hits: AtomicU64,
    /// Compile jobs the lookup stage forwarded to the solve ring.
    lookup_misses: AtomicU64,
    /// Jobs (of any kind) claimed by a solve worker.
    solve_claimed: AtomicU64,
    /// Completions the dispatcher delivered (== completed + failed).
    delivered: AtomicU64,
}

struct Inner {
    compiler: Compiler,
    /// [`Compiler::options_fingerprint`] computed once at startup — it
    /// hashes a `Debug` rendering, too hot to redo per submission.
    options_fp: u128,
    store: Option<CacheStore>,
    /// Serializes save/compact against each other (timer vs. requests vs.
    /// shutdown); the store itself is only torn-write-safe, not
    /// merge-atomic, within one process.
    store_lock: Mutex<()>,
    /// Stage 1 input: everything submitted lands here first.
    submission: JobQueue<Job>,
    /// Stage 2 input: true misses (and debug ops) forwarded by lookup.
    solve: JobQueue<Job>,
    /// Stage 3 input: warm hits and solved jobs, drained FIFO by the
    /// dispatcher.
    completions: FifoRing<Completion>,
    /// Jobs admitted but not yet claimed/warm-served/cancelled — the
    /// single gauge admission control and `queue_depth` run on.
    in_system: AtomicU64,
    capacity: usize,
    inflight: Mutex<HashMap<JobKey, Vec<(u64, mpsc::Sender<JobResult>)>>>,
    /// The shared-memory cache segment (`None` = no shared tier).
    shared: Option<Segment>,
    shared_stats: SharedAtomics,
    counters: Counters,
    stage: StageAtomics,
    done_seq: AtomicU64,
    waiter_seq: AtomicU64,
    gc_max_idle_gens: Option<u64>,
    debug_ops: bool,
    solve_delay: Option<Duration>,
    parse_limits: ParseLimits,
    benches: OnceLock<HashMap<String, Arc<Circuit>>>,
    /// Set by a protocol `shutdown` request; transport accept loops poll it.
    shutdown_requested: AtomicBool,
    timer_stop: (Mutex<bool>, Condvar),
}

impl Inner {
    /// Claims one admission slot; `false` when the system is at capacity.
    fn admit(&self) -> bool {
        self.in_system
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.capacity as u64).then_some(n + 1)
            })
            .is_ok()
    }

    /// Returns one admission slot (claim, warm short-circuit, or cancel).
    fn release(&self) {
        self.in_system.fetch_sub(1, Ordering::Relaxed);
    }

    /// The lookup stage: claims jobs off the submission ring and routes
    /// them — warm compile hits short-circuit to the completion ring,
    /// everything else crosses into the solve ring. Exits when the
    /// submission ring is closed and drained.
    fn lookup_loop(&self) {
        loop {
            // The inflight lock spans the whole claim-and-route transfer
            // so ticket cancellation (which removes ring entries under
            // the same lock) always finds a job in exactly one place —
            // never "popped here but not yet pushed there".
            let inflight = self.inflight.lock_recover();
            match self.submission.try_pop() {
                TryPop::Job(job, priority) => {
                    self.route(job, priority);
                    drop(inflight);
                }
                TryPop::Closed => return,
                TryPop::Empty => {
                    drop(inflight);
                    self.submission.wait_nonempty();
                }
            }
        }
    }

    /// Probes the two warm tiers for a compile key: the local program
    /// pool first, then the shared segment (seeding the local pool on a
    /// segment hit, so the *next* probe of this key never leaves the
    /// process). A segment hit counts under both `lookup_hits` (it is a
    /// warm short-circuit like any other) and `shared.hits` (which tier
    /// answered); `shared.hits <= lookup_hits` always.
    fn probe_tiers(&self, key: &JobKey) -> Option<Arc<Circuit>> {
        if let Some(hit) = self.compiler.lookup_program(key.circuit, key.pipeline, key.options) {
            return Some(hit);
        }
        let seg = self.shared.as_ref()?;
        let hit = sharing::probe_shared_program(
            seg,
            self.compiler.cache(),
            key.circuit,
            key.pipeline,
            key.options,
        )?;
        self.shared_stats.hits.fetch_add(1, Ordering::Relaxed);
        Some(hit)
    }

    /// Routes one claimed job (inflight lock held by the caller): a warm
    /// probe hit — local pool or shared segment — completes immediately;
    /// a miss — counted by the eventual solve-stage `compile`, not the
    /// probe — forwards at the job's original (possibly boosted)
    /// priority.
    fn route(&self, job: Job, priority: Priority) {
        match job {
            Job::Compile { key, circuit, pipeline } => {
                if let Some(hit) = self.probe_tiers(&key) {
                    self.stage.lookup_hits.fetch_add(1, Ordering::Relaxed);
                    self.release();
                    self.completions.push_completion(Completion {
                        target: CompletionTarget::Key(key),
                        outcome: Ok(Some(hit)),
                    });
                } else {
                    self.stage.lookup_misses.fetch_add(1, Ordering::Relaxed);
                    if self
                        .solve
                        .try_push(Job::Compile { key, circuit, pipeline }, priority)
                        .is_err()
                    {
                        // Unreachable by accounting: the solve ring's
                        // capacity equals the admission bound and it is
                        // closed only after this stage joins. Degrade to
                        // an error response rather than stranding waiters.
                        self.release();
                        self.completions.push_completion(Completion {
                            target: CompletionTarget::Key(key),
                            outcome: Err("solve stage unavailable".into()),
                        });
                    }
                }
            }
            debug_job => {
                // Debug ops always traverse the full pipeline (they model
                // cold work). On the unreachable push failure the job —
                // and with it the direct sender — is dropped, which the
                // waiter observes as service termination.
                let _ = self.solve.try_push(debug_job, priority);
            }
        }
    }

    /// A solve worker: claims forwarded jobs, runs the expensive compile
    /// under `catch_unwind`, posts the outcome to the completion ring.
    fn solve_loop(&self) {
        while let Some(job) = self.solve.pop() {
            self.stage.solve_claimed.fetch_add(1, Ordering::Relaxed);
            self.release();
            match job {
                Job::Compile { key, circuit, pipeline } => {
                    if let Some(delay) = self.solve_delay {
                        // The deterministic cold-solve stall the
                        // stall-isolation tests inject (debug ops and the
                        // lookup stage are unaffected by design).
                        std::thread::sleep(delay);
                    }
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        self.compiler.compile(&circuit, pipeline)
                    }));
                    let outcome = match out {
                        Ok(c) => {
                            let c = Arc::new(c);
                            // Publish at completion: every daemon on the
                            // box sees this solve as a warm hit from now
                            // on. A `Duplicate` means a peer solved the
                            // same key concurrently — their entry is
                            // byte-identical, so losing the race is free.
                            if let Some(seg) = &self.shared {
                                self.shared_stats.absorb(sharing::publish_program(
                                    seg,
                                    key.circuit,
                                    key.pipeline,
                                    key.options,
                                    &c,
                                ));
                            }
                            Ok(Some(c))
                        }
                        Err(p) => Err(format!("compile panicked: {}", panic_message(&p))),
                    };
                    self.completions
                        .push_completion(Completion { target: CompletionTarget::Key(key), outcome });
                }
                Job::Sleep { ms, tx } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    self.completions.push_completion(Completion {
                        target: CompletionTarget::Direct(tx),
                        outcome: Ok(None),
                    });
                }
                Job::Panic { tx } => {
                    // A *real* panic through the same isolation path real
                    // pipeline panics take — the poisoned-job drill.
                    let out = catch_unwind(|| panic!("debug panic op"));
                    debug_assert!(out.is_err());
                    self.completions.push_completion(Completion {
                        target: CompletionTarget::Direct(tx),
                        outcome: Err("compile panicked: debug panic op".into()),
                    });
                }
            }
        }
    }

    /// The dispatcher: drains the completion ring in FIFO order, assigns
    /// the global `done_seq`, counts `completed`/`failed`, and wakes the
    /// waiters. Single-threaded by construction, so delivery order and
    /// `done_seq` order coincide exactly.
    fn dispatch_loop(&self) {
        while let Some(done) = self.completions.pop_completion() {
            let done_seq = self.done_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let result: JobResult = match done.outcome {
                Ok(circuit) => {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    Ok(JobDone { circuit, done_seq })
                }
                Err(msg) => {
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    Err(msg)
                }
            };
            self.stage.delivered.fetch_add(1, Ordering::Relaxed);
            match done.target {
                CompletionTarget::Key(key) => {
                    let waiters = self.inflight.lock_recover().remove(&key).unwrap_or_default();
                    for (_, tx) in waiters {
                        // A waiter that dropped its ticket is not an error.
                        let _ = tx.send(result.clone());
                    }
                }
                CompletionTarget::Direct(tx) => {
                    let _ = tx.send(result);
                }
            }
        }
    }

    /// One snapshot: a compacting save when GC is configured, else plain.
    /// Either way the local pools are also bulk-published into the
    /// shared segment first, and a compacting pass advances the
    /// segment's generation clock so idle shared entries age alongside
    /// idle store entries.
    fn snapshot(&self, gc_override: Option<u64>) -> std::io::Result<SnapshotReport> {
        let gc = gc_override.or(self.gc_max_idle_gens);
        self.publish_shared(gc.is_some());
        let Some(store) = &self.store else {
            return Ok(SnapshotReport::NoStore);
        };
        let _guard = self.store_lock.lock_recover();
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        match gc {
            Some(max_idle) => {
                let o = store.compact(self.compiler.cache(), max_idle)?;
                Ok(SnapshotReport::Compacted(o))
            }
            None => {
                let n = store.save(self.compiler.cache())?;
                Ok(SnapshotReport::Saved { entries: n })
            }
        }
    }

    /// Bulk-publishes every local pool entry into the shared segment
    /// (the snapshot/shutdown hook; per-solve publishing makes most of
    /// these `Duplicate`s — this pass catches entries that arrived via
    /// store load or sub-program pools instead of a solve).
    fn publish_shared(&self, gc_tick: bool) {
        let Some(seg) = &self.shared else { return };
        let s = sharing::publish_all(seg, self.compiler.cache());
        self.shared_stats.published.fetch_add(s.published, Ordering::Relaxed);
        self.shared_stats.duplicates.fetch_add(s.duplicates, Ordering::Relaxed);
        self.shared_stats.full_rejects.fetch_add(s.full_rejects, Ordering::Relaxed);
        if gc_tick {
            seg.bump_generation();
        }
    }
}

/// What one snapshot pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotReport {
    /// The service runs without a persistent store.
    NoStore,
    /// Plain save: `entries` written.
    Saved {
        /// Entries written.
        entries: usize,
    },
    /// Compacting save.
    Compacted(CompactOutcome),
}

fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".into()
    }
}

/// The running service (see module docs). Dropping it shuts down
/// gracefully: drain every stage in order, join the threads, flush the
/// store.
pub struct Service {
    inner: Arc<Inner>,
    lookup_workers: Mutex<Vec<reqisc_sched::thread::JoinHandle<()>>>,
    workers: Mutex<Vec<reqisc_sched::thread::JoinHandle<()>>>,
    dispatcher: Mutex<Option<reqisc_sched::thread::JoinHandle<()>>>,
    timer: Mutex<Option<reqisc_sched::thread::JoinHandle<()>>>,
    stopped: AtomicBool,
    startup_load: Option<LoadOutcome>,
}

impl Service {
    /// Starts a service with a freshly built compiler (pre-synthesizing
    /// the template library — the one-time resident cost interactive
    /// callers no longer pay per request).
    pub fn start(config: ServiceConfig) -> Self {
        let compiler = match config.pool_shape {
            Some((shards, cap)) => Compiler::new_with_library_and_cache(
                Compiler::builtin_library(),
                CompileCache::with_shape(shards, cap),
            ),
            None => Compiler::new(),
        };
        Self::start_with_compiler(compiler, config)
    }

    /// Starts a service around an existing compiler — the constructor for
    /// tests (cheap search budgets, shared template libraries) and for
    /// embedders that pre-tune [`Compiler::hs`].
    pub fn start_with_compiler(mut compiler: Compiler, config: ServiceConfig) -> Self {
        // Solve workers are the parallelism; per-job block batching
        // inside a worker would oversubscribe the pool.
        compiler.block_threads = 1;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let lookup_workers = config.lookup_workers.max(1);
        let solve_delay = config
            .solve_delay_ms
            .or_else(|| match reqisc_env::DEBUG_SOLVE_DELAY_MS.usize_or(0) {
                0 => None,
                ms => Some(ms as u64),
            })
            .map(Duration::from_millis);
        let store = config.cache_dir.as_ref().map(CacheStore::new);
        let startup_load = store.as_ref().map(|s| s.load_into(compiler.cache()));
        // The shared segment attaches under the same format version as
        // the store, so a codec bump invalidates stale segments exactly
        // like stale store files. Attach failure degrades to running
        // without the shared tier — a cache must never stop the service.
        let shared = config.shm_path.as_ref().and_then(|p| {
            match Segment::attach(p, config.shm_capacity_bytes, STORE_FORMAT_VERSION) {
                Ok(seg) => Some(seg),
                Err(e) => {
                    eprintln!(
                        "# reqisc-service: shared segment {} unusable ({e}); \
                         continuing without the shared tier",
                        p.display()
                    );
                    None
                }
            }
        });
        let shared_stats = SharedAtomics::default();
        if let Some(seg) = &shared {
            // Only the sub-program pools seed eagerly: synthesis/pulse
            // entries are consulted deep inside a cold solve (no segment
            // probe there), while whole-program entries stay in the
            // segment for the lookup stage's probe tier to answer.
            let seeded = sharing::seed_subprogram_pools(seg, compiler.cache());
            shared_stats.seeded.store(seeded as u64, Ordering::Relaxed);
        }
        let options_fp = compiler.options_fingerprint();
        let inner = Arc::new(Inner {
            compiler,
            options_fp,
            store,
            store_lock: Mutex::new(()),
            submission: JobQueue::new(config.queue_capacity),
            solve: JobQueue::new(config.queue_capacity),
            completions: FifoRing::new(),
            in_system: AtomicU64::new(0),
            capacity: config.queue_capacity,
            inflight: Mutex::new(HashMap::new()),
            shared,
            shared_stats,
            counters: Counters::default(),
            stage: StageAtomics::default(),
            done_seq: AtomicU64::new(0),
            waiter_seq: AtomicU64::new(0),
            gc_max_idle_gens: config.gc_max_idle_gens,
            debug_ops: config.debug_ops,
            solve_delay,
            parse_limits: config.parse_limits,
            benches: OnceLock::new(),
            shutdown_requested: AtomicBool::new(false),
            timer_stop: (Mutex::new(false), Condvar::new()),
        });
        let solve_handles = (0..workers)
            .map(|_| {
                let inner = inner.clone();
                reqisc_sched::thread::spawn(move || inner.solve_loop())
            })
            .collect();
        let lookup_handles = (0..lookup_workers)
            .map(|_| {
                let inner = inner.clone();
                reqisc_sched::thread::spawn(move || inner.lookup_loop())
            })
            .collect();
        let dispatcher = {
            let inner = inner.clone();
            reqisc_sched::thread::spawn(move || inner.dispatch_loop())
        };
        let timer = config.snapshot_interval.map(|interval| {
            let inner = inner.clone();
            reqisc_sched::thread::spawn(move || {
                let (lock, cv) = &inner.timer_stop;
                let mut stopped = lock.lock_recover();
                loop {
                    let (guard, timeout) =
                        crate::sync::wait_timeout_recover(cv, stopped, interval);
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        if let Err(e) = inner.snapshot(None) {
                            eprintln!("# reqisc-service: periodic snapshot failed: {e}");
                        }
                    }
                }
            })
        });
        Self {
            inner,
            lookup_workers: Mutex::new(lookup_handles),
            workers: Mutex::new(solve_handles),
            dispatcher: Mutex::new(Some(dispatcher)),
            timer: Mutex::new(timer),
            stopped: AtomicBool::new(false),
            startup_load,
        }
    }

    /// The store-load outcome observed at startup (`None` = no store
    /// configured).
    pub fn startup_load(&self) -> Option<&LoadOutcome> {
        self.startup_load.as_ref()
    }

    /// Resolves a protocol compile source into a circuit: QASM parses
    /// under the configured [`ParseLimits`]; bench names resolve against
    /// the demo-scale benchsuite.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] with a description.
    pub fn resolve_source(&self, source: &CompileSource) -> Result<Arc<Circuit>, SubmitError> {
        match source {
            CompileSource::Qasm(text) => parse_bounded(text, &self.inner.parse_limits)
                .map(Arc::new)
                .map_err(|e| SubmitError::Invalid(format!("qasm: {e}"))),
            CompileSource::Bench(name) => {
                let benches = self.inner.benches.get_or_init(|| {
                    reqisc_benchsuite::suite(reqisc_benchsuite::Scale::Demo)
                        .into_iter()
                        .map(|b| (b.name, Arc::new(b.circuit)))
                        .collect()
                });
                benches
                    .get(name)
                    .cloned()
                    .ok_or_else(|| SubmitError::Invalid(format!("unknown bench program '{name}'")))
            }
        }
    }

    /// Submits one compile job (see the module docs for coalescing and
    /// admission semantics).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when admission control rejects.
    pub fn submit_compile(
        &self,
        circuit: Arc<Circuit>,
        pipeline: Pipeline,
        priority: Priority,
    ) -> Result<Ticket, SubmitError> {
        let key = JobKey {
            circuit: circuit.content_hash(),
            pipeline,
            options: self.inner.options_fp,
        };
        let (tx, rx) = mpsc::channel();
        let waiter_id = self.inner.waiter_seq.fetch_add(1, Ordering::Relaxed);
        let guard = Some(WaiterGuard { inner: self.inner.clone(), key, id: waiter_id });
        // The inflight lock spans the ring push so neither the lookup
        // stage's transfer nor the dispatcher's waiter collection can
        // interleave between "ringed" and "registered".
        let mut inflight = self.inner.inflight.lock_recover();
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push((waiter_id, tx));
            // A more urgent duplicate must not wait at the original
            // submission's priority: raise the ringed job to match,
            // wherever it currently sits (a no-op if the job already
            // runs or was ringed hotter).
            let is_ours =
                move |job: &Job| matches!(job, Job::Compile { key: k, .. } if *k == key);
            if !self.inner.submission.boost(is_ours, priority) {
                self.inner.solve.boost(is_ours, priority);
            }
            self.inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Ticket { rx, coalesced: true, _guard: guard });
        }
        if !self.inner.admit() {
            self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull(QueueFull { capacity: self.inner.capacity }));
        }
        match self.inner.submission.try_push(Job::Compile { key, circuit, pipeline }, priority) {
            Ok(()) => {
                inflight.insert(key, vec![(waiter_id, tx)]);
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx, coalesced: false, _guard: guard })
            }
            Err(full) => {
                // Only reachable when the ring is closed (draining):
                // undo the admission and reject like a full queue.
                self.inner.release();
                self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull(full))
            }
        }
    }

    /// Submits a gated debug op (`sleep`/`panic`).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] unless the service was started with
    /// `debug_ops`; [`SubmitError::QueueFull`] on admission rejection.
    pub fn submit_debug(&self, op: DebugOp, priority: Priority) -> Result<Ticket, SubmitError> {
        if !self.inner.debug_ops {
            return Err(SubmitError::Invalid("debug ops are disabled".into()));
        }
        let (tx, rx) = mpsc::channel();
        let job = match op {
            DebugOp::Sleep { ms } => Job::Sleep { ms, tx },
            DebugOp::Panic => Job::Panic { tx },
        };
        if !self.inner.admit() {
            self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull(QueueFull { capacity: self.inner.capacity }));
        }
        match self.inner.submission.try_push(job, priority) {
            Ok(()) => {
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx, coalesced: false, _guard: None })
            }
            Err(full) => {
                self.inner.release();
                self.inner.counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull(full))
            }
        }
    }

    /// Metrics of a compiled circuit under the evaluation's XY coupling —
    /// what compile responses report.
    pub fn metrics(&self, c: &Circuit) -> reqisc_compiler::Metrics {
        reqisc_compiler::metrics(c, &reqisc_microarch::Coupling::xy(1.0))
    }

    /// Snapshot of every counter the `stats` op reports.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        let st = &self.inner.stage;
        StatsSnapshot {
            service: ServiceCounters {
                submitted: c.submitted.load(Ordering::Relaxed),
                completed: c.completed.load(Ordering::Relaxed),
                failed: c.failed.load(Ordering::Relaxed),
                coalesced: c.coalesced.load(Ordering::Relaxed),
                rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
                cancelled: c.cancelled.load(Ordering::Relaxed),
                snapshots: c.snapshots.load(Ordering::Relaxed),
                queue_depth: self.inner.in_system.load(Ordering::Relaxed),
            },
            stages: StageCounters {
                submission: ring_counters(
                    self.inner.submission.ring_stats(),
                    self.inner.submission.len(),
                ),
                solve: ring_counters(self.inner.solve.ring_stats(), self.inner.solve.len()),
                completion: ring_counters(
                    self.inner.completions.ring_stats(),
                    self.inner.completions.len(),
                ),
                lookup_hits: st.lookup_hits.load(Ordering::Relaxed),
                lookup_misses: st.lookup_misses.load(Ordering::Relaxed),
                solve_claimed: st.solve_claimed.load(Ordering::Relaxed),
                delivered: st.delivered.load(Ordering::Relaxed),
            },
            cache: self.inner.compiler.cache_stats(),
            store: self.inner.store.as_ref().map(|s| s.stats()),
            shared: self.inner.shared.as_ref().map(|seg| {
                let sh = &self.inner.shared_stats;
                SharedCounters {
                    hits: sh.hits.load(Ordering::Relaxed),
                    published: sh.published.load(Ordering::Relaxed),
                    duplicates: sh.duplicates.load(Ordering::Relaxed),
                    full_rejects: sh.full_rejects.load(Ordering::Relaxed),
                    seeded: sh.seeded.load(Ordering::Relaxed),
                    entries: seg.entries(),
                    generation: seg.generation(),
                }
            }),
        }
    }

    /// Jobs in the system right now: admitted, not yet claimed by a
    /// solve worker, warm-served, or cancelled (the same meaning the
    /// pre-pipeline single queue's depth had).
    pub fn queue_depth(&self) -> usize {
        self.inner.in_system.load(Ordering::Relaxed) as usize
    }

    /// Forces a store snapshot now (plain save, no GC).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the save.
    pub fn snapshot_now(&self) -> std::io::Result<SnapshotReport> {
        self.inner.publish_shared(false);
        let Some(store) = &self.inner.store else {
            return Ok(SnapshotReport::NoStore);
        };
        let _guard = self.inner.store_lock.lock_recover();
        self.inner.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        let n = store.save(self.inner.compiler.cache())?;
        Ok(SnapshotReport::Saved { entries: n })
    }

    /// Forces a compacting snapshot now. `max_idle_gens = None` uses the
    /// configured default (or 0 — "keep only what this process
    /// referenced" — when none was configured).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the rewrite.
    pub fn compact_now(&self, max_idle_gens: Option<u64>) -> std::io::Result<SnapshotReport> {
        let gens = max_idle_gens.or(self.inner.gc_max_idle_gens).unwrap_or(0);
        self.inner.snapshot(Some(gens))
    }

    /// True once a protocol `shutdown` request has been accepted (the
    /// transport accept loops poll this).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::Acquire)
    }

    /// Marks shutdown as requested (called by the protocol layer).
    pub fn request_shutdown(&self) {
        self.inner.shutdown_requested.store(true, Ordering::Release);
    }

    /// Graceful shutdown, stage by stage: stop admitting, drain the
    /// submission ring through the lookup stage, drain the solve ring
    /// through the workers, drain the completion ring through the
    /// dispatcher, join the snapshot timer, then flush the store. Each
    /// stage's input is closed only after the upstream stage has been
    /// joined, so a job in flight *anywhere* is either delivered or (if
    /// every waiter already left) cleanly cancelled — never stranded.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        self.request_shutdown();
        self.inner.submission.close();
        for h in self.lookup_workers.lock_recover().drain(..) {
            let _ = h.join();
        }
        self.inner.solve.close();
        for h in self.workers.lock_recover().drain(..) {
            let _ = h.join();
        }
        self.inner.completions.close();
        if let Some(h) = self.dispatcher.lock_recover().take() {
            let _ = h.join();
        }
        let (lock, cv) = &self.inner.timer_stop;
        *lock.lock_recover() = true;
        cv.notify_all();
        if let Some(h) = self.timer.lock_recover().take() {
            let _ = h.join();
        }
        if let Err(e) = self.inner.snapshot(None) {
            eprintln!("# reqisc-service: shutdown store flush failed: {e}");
        }
    }
}

fn ring_counters(rs: RingStats, depth: usize) -> RingCounters {
    RingCounters {
        enqueued: rs.enqueued,
        dequeued: rs.dequeued,
        depth: depth as u64,
        wait_us: rs.wait_us,
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The gated debug operations (see [`Service::submit_debug`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugOp {
    /// Hold a worker for `ms` milliseconds.
    Sleep {
        /// Hold duration in milliseconds.
        ms: u64,
    },
    /// Panic inside the worker (exercises per-job isolation).
    Panic,
}
