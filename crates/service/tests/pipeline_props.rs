//! Property tests of the staged pipeline's ring and stage semantics:
//!
//! * the submission/solve ring ([`JobQueue`]) model-checked under
//!   arbitrary push/pop/boost/cancel interleavings — priority-then-FIFO
//!   order survives every sequence, and the transit counters balance;
//! * the completion ring ([`FifoRing`]) model-checked as a strict FIFO
//!   with close-drop semantics;
//! * the assembled service under random warm submit/coalesce/cancel
//!   interleavings — no completion is ever lost, no coalesced ticket is
//!   ever double-responded, and the admission accounting closes exactly.
//!
//! Determinism note (single-core container): nothing here asserts wall
//! time. The queue/ring checks are single-threaded model checks; the
//! service check asserts counter conservation laws that hold for *every*
//! legal interleaving of the pipeline stages.

use proptest::prelude::*;
use reqisc_compiler::{Compiler, Pipeline};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_service::{
    DebugOp, FifoRing, JobQueue, Priority, Service, ServiceConfig, TryPop, DEFAULT_PRIORITY,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_compiler() -> Compiler {
    use std::sync::OnceLock;
    static LIB: OnceLock<reqisc_synthesis::TemplateLibrary> = OnceLock::new();
    let mut c = Compiler::new_with_library(
        LIB.get_or_init(|| {
            let mut search = reqisc_synthesis::SearchOptions::default();
            search.sweep.restarts = 3;
            reqisc_synthesis::TemplateLibrary::builtin(&search)
        })
        .clone(),
    );
    c.hs.search.sweep.restarts = 2;
    c.hs.search.sweep.max_sweeps = 150;
    c
}

fn tiny(seed: u64) -> Arc<Circuit> {
    let mut c = Circuit::new(3);
    c.push(Gate::Ccx(0, 1, 2));
    c.push(Gate::H((seed % 3) as usize));
    if seed.is_multiple_of(2) {
        c.push(Gate::Cx(0, 2));
    }
    c.push(Gate::Rz(1, 0.1 + seed as f64));
    Arc::new(c)
}

/// Parks the single solve worker on a sleep job and waits until the job
/// has been claimed (admission gauge back to zero).
fn park_worker(service: &Service, ms: u64) -> reqisc_service::Ticket {
    let t = service.submit_debug(DebugOp::Sleep { ms }, DEFAULT_PRIORITY).expect("park");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never claimed the park job");
        std::thread::yield_now();
    }
    t
}

/// The reference model of one ring entry: priority, admission sequence,
/// unique tag. The queue must always surface the maximum by
/// (priority desc, sequence asc).
#[derive(Debug, Clone, Copy)]
struct ModelEntry {
    priority: Priority,
    seq: u64,
    tag: u64,
}

fn model_best(model: &[ModelEntry]) -> usize {
    let mut best = 0;
    for (i, e) in model.iter().enumerate() {
        let b = &model[best];
        if (e.priority, std::cmp::Reverse(e.seq)) > (b.priority, std::cmp::Reverse(b.seq)) {
            best = i;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bounded priority ring against its reference model: arbitrary
    /// interleavings of push (admission-capped), pop, boost (the hot
    /// coalesced-duplicate path), and remove (ticket cancellation) keep
    /// strict priority-then-FIFO order, and the transit counters balance
    /// (`enqueued == dequeued` once drained).
    #[test]
    fn job_queue_matches_its_model_under_arbitrary_interleavings(
        ops in proptest::collection::vec((0u8..10, 0u8..4, 0u8..8), 1..60)
    ) {
        const CAP: usize = 6;
        let q: JobQueue<u64> = JobQueue::new(CAP);
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut next_tag = 0u64;
        let mut next_seq = 0u64;
        let mut pushed = 0u64;
        let mut left = 0u64;
        for &(sel, prio, pick) in &ops {
            match sel {
                // Push: admission-capped, unique tags.
                0..=3 => {
                    let tag = next_tag;
                    next_tag += 1;
                    let r = q.try_push(tag, prio);
                    if model.len() < CAP {
                        prop_assert!(r.is_ok(), "push under capacity must admit");
                        model.push(ModelEntry { priority: prio, seq: next_seq, tag });
                        next_seq += 1;
                        pushed += 1;
                    } else {
                        prop_assert!(r.is_err(), "push at capacity must reject");
                    }
                }
                // Pop: must surface the model's (priority desc, seq asc)
                // maximum, with the priority it was queued (or boosted) at.
                4 | 5 => match q.try_pop() {
                    TryPop::Job(tag, at) => {
                        prop_assert!(!model.is_empty(), "popped from an empty model");
                        let best = model_best(&model);
                        let e = model.remove(best);
                        prop_assert_eq!(tag, e.tag, "pop order diverged from the model");
                        prop_assert_eq!(at, e.priority, "claimed priority diverged");
                        left += 1;
                    }
                    TryPop::Empty => prop_assert!(model.is_empty(), "queue empty, model is not"),
                    TryPop::Closed => prop_assert!(false, "queue reported closed before close()"),
                },
                // Boost: raise one queued entry (never lower it); the
                // entry keeps its sequence number.
                6 | 7 => {
                    if model.is_empty() {
                        prop_assert!(!q.boost(|_| true, prio), "boost in empty queue");
                    } else {
                        let i = pick as usize % model.len();
                        let tag = model[i].tag;
                        let expect = model[i].priority < prio;
                        prop_assert_eq!(q.boost(move |&t| t == tag, prio), expect);
                        if expect {
                            model[i].priority = prio;
                        }
                    }
                }
                // Remove (cancellation): exactly one matching entry leaves.
                _ => {
                    if model.is_empty() {
                        prop_assert!(!q.remove_first(|_| true), "remove in empty queue");
                    } else {
                        let i = pick as usize % model.len();
                        let tag = model[i].tag;
                        prop_assert!(q.remove_first(move |&t| t == tag));
                        model.remove(i);
                        left += 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len(), "depth diverged from the model");
        }
        // Drain: the survivors surface in exact priority-then-FIFO order,
        // then the closed ring reports Closed, and the counters balance.
        q.close();
        loop {
            match q.try_pop() {
                TryPop::Job(tag, at) => {
                    prop_assert!(!model.is_empty());
                    let e = model.remove(model_best(&model));
                    prop_assert_eq!(tag, e.tag, "drain order diverged from the model");
                    prop_assert_eq!(at, e.priority);
                    left += 1;
                }
                TryPop::Closed => break,
                TryPop::Empty => prop_assert!(false, "closed queue must report Closed, not Empty"),
            }
        }
        prop_assert!(model.is_empty(), "entries lost in the drain");
        let rs = q.ring_stats();
        prop_assert_eq!(rs.enqueued, pushed);
        prop_assert_eq!(rs.dequeued, left, "every departure (pop or cancel) must be counted");
        prop_assert_eq!(rs.enqueued, rs.dequeued, "drained ring must balance");
    }

    /// The completion ring is a strict FIFO: arbitrary push/pop
    /// interleavings deliver in exact arrival order (the invariant that
    /// makes `done_seq` assignment deterministic), nothing is lost, and
    /// pushes after close are dropped — not delivered, not counted.
    #[test]
    fn fifo_ring_matches_its_model(ops in proptest::collection::vec((0u8..3, 0u64..100), 1..50)) {
        let ring: FifoRing<u64> = FifoRing::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut accepted = 0u64;
        for &(sel, val) in &ops {
            if sel < 2 {
                prop_assert!(ring.push_completion(val), "open ring must accept");
                model.push_back(val);
                accepted += 1;
            } else if let Some(front) = model.pop_front() {
                // Only pop when the model is non-empty: pop_completion
                // blocks on an open empty ring by design.
                prop_assert_eq!(ring.pop_completion(), Some(front), "FIFO order violated");
            }
            prop_assert_eq!(ring.len(), model.len());
        }
        ring.close();
        prop_assert!(!ring.push_completion(999), "closed ring must drop pushes");
        while let Some(front) = model.pop_front() {
            prop_assert_eq!(ring.pop_completion(), Some(front), "drain order violated");
        }
        prop_assert_eq!(ring.pop_completion(), None, "closed + drained signals None");
        let rs = ring.ring_stats();
        prop_assert_eq!(rs.enqueued, accepted, "the dropped post-close push must not count");
        prop_assert_eq!(rs.dequeued, accepted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The assembled pipeline under random warm submit / coalesce /
    /// cancel interleavings racing the live lookup stage: after a full
    /// drain (shutdown), every kept ticket holds exactly one response
    /// (nothing lost, nothing double-delivered), and the admission
    /// accounting closes exactly — every non-coalesced submission is
    /// either completed or cancelled, every ring balances.
    #[test]
    fn random_warm_interleavings_conserve_completions(
        ops in proptest::collection::vec((0u64..2, 0u8..10, 0u8..4), 1..16)
    ) {
        let service = Service::start_with_compiler(
            small_compiler(),
            ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
        );
        // Prime both keys so the op mix is pure warm traffic: from here
        // on, no job may legitimately reach the solve stage.
        for seed in 0..2 {
            service
                .submit_compile(tiny(seed), Pipeline::Qiskit, DEFAULT_PRIORITY)
                .expect("prime submit")
                .wait()
                .expect("prime compile");
        }
        let s0 = service.stats_snapshot();
        let park = park_worker(&service, 100);
        let mut kept = Vec::new();
        let mut submits = 0u64;
        let mut coalesced_seen = 0u64;
        for &(key, priority, action) in &ops {
            let t = service
                .submit_compile(tiny(key), Pipeline::Qiskit, priority.min(9))
                .expect("warm submit");
            submits += 1;
            if t.coalesced {
                coalesced_seen += 1;
            }
            if action == 0 {
                // A client disconnecting immediately: races the lookup
                // stage — either cancelled in-ring or served to nobody.
                drop(t);
            } else {
                kept.push(t);
            }
        }
        park.wait().expect("park");
        // Shutdown drains every stage; buffered responses stay readable.
        service.shutdown();
        for t in kept {
            let (result, extras) = t.wait_counting_duplicates();
            prop_assert!(result.is_ok(), "kept warm ticket lost its completion: {result:?}");
            prop_assert_eq!(extras, 0, "a ticket was double-responded");
        }
        prop_assert_eq!(service.queue_depth(), 0, "admission gauge must return to zero");
        let s1 = service.stats_snapshot();
        let d = |f: fn(&reqisc_service::ServiceCounters) -> u64| f(&s1.service) - f(&s0.service);
        prop_assert_eq!(d(|s| s.submitted), submits + 1, "ops + the park");
        prop_assert_eq!(d(|s| s.coalesced), coalesced_seen);
        prop_assert_eq!(d(|s| s.failed), 0);
        // Conservation: every admitted job (non-coalesced submission)
        // ends exactly one way — completed (warm-served / park ran) or
        // cancelled in-ring.
        let admitted = submits + 1 - coalesced_seen;
        prop_assert_eq!(d(|s| s.completed) + d(|s| s.cancelled), admitted);
        // Stage conservation: warm traffic never touches the solve
        // stage; the park is the only solve claim; deliveries match.
        let st0 = &s0.stages;
        let st1 = &s1.stages;
        prop_assert_eq!(st1.solve_claimed - st0.solve_claimed, 1, "only the park may solve");
        prop_assert_eq!(st1.lookup_misses - st0.lookup_misses, 0, "no warm lookup may miss");
        prop_assert_eq!(
            st1.lookup_hits - st0.lookup_hits + d(|s| s.cancelled),
            admitted - 1,
            "every admitted warm job is either lookup-served or cancelled"
        );
        prop_assert_eq!(st1.delivered - st0.delivered, d(|s| s.completed) + d(|s| s.failed));
        // Every ring drained and balanced.
        for (name, rc) in [
            ("submission", &st1.submission),
            ("solve", &st1.solve),
            ("completion", &st1.completion),
        ] {
            prop_assert_eq!(rc.depth, 0, "{} ring not drained", name);
            prop_assert_eq!(rc.enqueued, rc.dequeued, "{} ring unbalanced", name);
        }
    }
}
