//! Queue-semantics tests: in-flight coalescing (N identical jobs ⇒ one
//! compile, N responses), backpressure rejection ordering, priority
//! scheduling, graceful shutdown flushing the store, and a poisoned job
//! not wedging the worker pool.
//!
//! Determinism on one worker: a debug `sleep` job parks the single
//! worker first, so everything submitted behind it is ordered purely by
//! the queue — no wall-clock races (single-core container: this is the
//! validation style the ROADMAP prescribes instead of parallel timing).

use proptest::prelude::*;
use reqisc_compiler::{CacheStore, Compiler, LoadOutcome, Pipeline};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_service::{DebugOp, Service, ServiceConfig, SubmitError, DEFAULT_PRIORITY};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A compiler with the reduced-but-exact search budget the other
/// integration suites use, around a shared pre-synthesized library.
fn small_compiler() -> Compiler {
    use std::sync::OnceLock;
    static LIB: OnceLock<reqisc_synthesis::TemplateLibrary> = OnceLock::new();
    let mut c = Compiler::new_with_library(
        LIB.get_or_init(|| {
            let mut search = reqisc_synthesis::SearchOptions::default();
            search.sweep.restarts = 3;
            reqisc_synthesis::TemplateLibrary::builtin(&search)
        })
        .clone(),
    );
    c.hs.search.sweep.restarts = 2;
    c.hs.search.sweep.max_sweeps = 150;
    c
}

fn tiny(seed: u64) -> Arc<Circuit> {
    let mut c = Circuit::new(3);
    c.push(Gate::Ccx(0, 1, 2));
    c.push(Gate::H((seed % 3) as usize));
    if seed.is_multiple_of(2) {
        c.push(Gate::Cx(0, 2));
    }
    c.push(Gate::Rz(1, 0.1 + seed as f64));
    Arc::new(c)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reqisc-service-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parks the single worker on a sleep job and waits until it has left
/// the queue (i.e. the worker picked it up).
fn park_worker(service: &Service, ms: u64) -> reqisc_service::Ticket {
    let t = service.submit_debug(DebugOp::Sleep { ms }, DEFAULT_PRIORITY).expect("park");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never claimed the park job");
        std::thread::yield_now();
    }
    t
}

#[test]
fn n_identical_jobs_coalesce_to_one_compile_n_responses() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let park = park_worker(&service, 150);
    let c = tiny(0);
    let n = 5;
    let tickets: Vec<_> = (0..n)
        .map(|_| service.submit_compile(c.clone(), Pipeline::ReqiscEff, DEFAULT_PRIORITY).unwrap())
        .collect();
    // Exactly one occupies a queue slot; the rest attached in-flight.
    assert_eq!(tickets.iter().filter(|t| !t.coalesced).count(), 1);
    assert_eq!(tickets.iter().filter(|t| t.coalesced).count(), n - 1);
    assert_eq!(service.queue_depth(), 1, "coalesced jobs must not occupy queue slots");
    park.wait().expect("park");
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait().expect("compile")).collect();
    let fp = results[0].circuit.as_ref().unwrap().content_hash();
    assert!(
        results.iter().all(|r| r.circuit.as_ref().unwrap().content_hash() == fp),
        "all N responses must carry the one result"
    );
    let s = service.stats_snapshot();
    assert_eq!(s.service.coalesced, (n - 1) as u64);
    assert_eq!(s.service.completed, 2, "the park job + exactly ONE compile");
    // The one compile was a cold miss; nobody else even looked the key up.
    assert_eq!((s.cache.programs.hits, s.cache.programs.misses), (0, 1));
    service.shutdown();
}

#[test]
fn backpressure_rejects_late_submissions_and_recovers() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            debug_ops: true,
            ..ServiceConfig::default()
        },
    );
    let park = park_worker(&service, 150);
    let t1 = service.submit_compile(tiny(1), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("fits");
    let t2 = service.submit_compile(tiny(2), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("fits");
    // Rejection ordering: capacity admits in submission order; the THIRD
    // distinct job is the one turned away, and the earlier two are
    // unaffected by the rejection.
    let r3 = service.submit_compile(tiny(3), Pipeline::Qiskit, DEFAULT_PRIORITY);
    assert!(matches!(r3, Err(SubmitError::QueueFull(_))), "third job must reject: {r3:?}");
    // A duplicate of an in-flight job still coalesces — admission control
    // applies to queue slots, not to attachments.
    let dup = service.submit_compile(tiny(1), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("coalesce");
    assert!(dup.coalesced);
    assert_eq!(service.stats_snapshot().service.rejected_queue_full, 1);
    park.wait().expect("park");
    assert!(t1.wait().is_ok() && t2.wait().is_ok() && dup.wait().is_ok());
    // The queue drained: the same submission is now admitted and runs.
    let t3 = service.submit_compile(tiny(3), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("retry");
    assert!(t3.wait().is_ok());
    let s = service.stats_snapshot();
    assert_eq!(s.service.rejected_queue_full, 1);
    assert_eq!(s.service.failed, 0);
    service.shutdown();
}

#[test]
fn higher_priority_jobs_complete_first() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let park = park_worker(&service, 150);
    let low = service.submit_compile(tiny(4), Pipeline::Qiskit, 0).expect("low");
    let mid = service.submit_compile(tiny(5), Pipeline::Qiskit, 5).expect("mid");
    let high = service.submit_compile(tiny(6), Pipeline::Qiskit, 9).expect("high");
    park.wait().expect("park");
    let (low, mid, high) =
        (low.wait().expect("low"), mid.wait().expect("mid"), high.wait().expect("high"));
    assert!(
        high.done_seq < mid.done_seq && mid.done_seq < low.done_seq,
        "completion order must follow priority: high {} mid {} low {}",
        high.done_seq,
        mid.done_seq,
        low.done_seq
    );
    service.shutdown();
}

#[test]
fn hot_duplicate_boosts_its_queued_original() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let park = park_worker(&service, 150);
    // A cold batch job, then an unrelated mid-priority job ahead of it.
    let batch = service.submit_compile(tiny(10), Pipeline::Qiskit, 0).expect("batch");
    let mid = service.submit_compile(tiny(11), Pipeline::Qiskit, 5).expect("mid");
    // An interactive duplicate of the batch job: coalesces AND raises the
    // queued original, so the pair must now complete before `mid`.
    let hot = service.submit_compile(tiny(10), Pipeline::Qiskit, 9).expect("hot dup");
    assert!(hot.coalesced);
    park.wait().expect("park");
    let (batch, mid, hot) =
        (batch.wait().expect("batch"), mid.wait().expect("mid"), hot.wait().expect("hot"));
    assert_eq!(batch.done_seq, hot.done_seq, "one compile served both");
    assert!(
        hot.done_seq < mid.done_seq,
        "boosted duplicate must overtake the mid-priority job: hot {} mid {}",
        hot.done_seq,
        mid.done_seq
    );
    service.shutdown();
}

#[test]
fn dropping_the_only_ticket_cancels_a_queued_job() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let park = park_worker(&service, 150);
    let orphan = service.submit_compile(tiny(20), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    assert_eq!(service.queue_depth(), 1);
    // The client disconnects while its job is still queued: the job must
    // leave the queue immediately — no worker ever runs the compile.
    drop(orphan);
    assert_eq!(service.queue_depth(), 0, "cancelled job must free its queue slot");
    park.wait().expect("park");
    let s = service.stats_snapshot();
    assert_eq!(s.service.cancelled, 1, "cancellation must be counted");
    assert_eq!(s.service.completed, 1, "only the park job ran");
    assert_eq!(s.cache.programs.misses, 0, "the compile never started");
    // The same program submitted again is a fresh job and completes.
    let retry = service.submit_compile(tiny(20), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    assert!(!retry.coalesced, "cancelled job must not linger in the inflight map");
    assert!(retry.wait().is_ok());
    assert_eq!(service.stats_snapshot().service.cancelled, 1);
    service.shutdown();
}

#[test]
fn cancellation_waits_for_the_last_coalesced_waiter() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let park = park_worker(&service, 150);
    let first = service.submit_compile(tiny(21), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    let second = service.submit_compile(tiny(21), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    assert!(second.coalesced);
    // One of two waiters disconnects: the survivor still owns the job.
    drop(first);
    assert_eq!(service.queue_depth(), 1, "a surviving waiter keeps the job queued");
    assert_eq!(service.stats_snapshot().service.cancelled, 0);
    park.wait().expect("park");
    assert!(second.wait().is_ok(), "the surviving waiter must get the result");
    // Both waiters of a second job disconnect: now it cancels.
    let park2 = park_worker(&service, 150);
    let a = service.submit_compile(tiny(22), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    let b = service.submit_compile(tiny(22), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    drop(a);
    drop(b);
    assert_eq!(service.queue_depth(), 0);
    park2.wait().expect("park");
    let s = service.stats_snapshot();
    assert_eq!(s.service.cancelled, 1);
    assert_eq!(s.service.completed, 3, "two parks + one compile, no cancelled work");
    service.shutdown();
}

#[test]
fn waited_tickets_never_count_as_cancelled() {
    // The guard rides every ticket; a normally-served request must leave
    // the cancellation counter untouched (the completion path removes the
    // inflight entry before the guard drops).
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    for seed in 0..3 {
        let t = service.submit_compile(tiny(seed), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
        assert!(t.wait().is_ok());
    }
    let s = service.stats_snapshot();
    assert_eq!(s.service.cancelled, 0);
    assert_eq!(s.service.completed, 3);
    service.shutdown();
}

#[test]
fn poisoned_job_fails_cleanly_without_wedging_the_pool() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
    );
    let poisoned = service.submit_debug(DebugOp::Panic, DEFAULT_PRIORITY).expect("submit");
    let err = poisoned.wait().expect_err("the panic op must fail");
    assert!(err.contains("panic"), "failure reason surfaced: {err}");
    // The (single!) worker survived and serves the next job normally.
    let ok = service
        .submit_compile(tiny(7), Pipeline::Qiskit, DEFAULT_PRIORITY)
        .expect("submit")
        .wait()
        .expect("the pool must survive a poisoned job");
    assert!(ok.circuit.is_some());
    let s = service.stats_snapshot();
    assert_eq!((s.service.failed, s.service.completed), (1, 1));
    service.shutdown();
}

#[test]
fn graceful_shutdown_drains_queue_and_flushes_store() {
    let dir = scratch_dir("shutdown-flush");
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            debug_ops: true,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(service.startup_load(), Some(&LoadOutcome::Missing));
    let park = park_worker(&service, 100);
    // Still queued when shutdown starts: drain must finish it, not drop it.
    let queued = service.submit_compile(tiny(8), Pipeline::Qiskit, DEFAULT_PRIORITY).unwrap();
    service.shutdown();
    park.wait().expect("park ran");
    let done = queued.wait().expect("queued job must drain, not drop");
    let fp = done.circuit.unwrap().content_hash();
    // The store was flushed on shutdown and warms a fresh compiler.
    let warm = small_compiler();
    let outcome = CacheStore::new(&dir).load_into(warm.cache());
    match outcome {
        LoadOutcome::Loaded { programs, .. } => assert!(programs >= 1, "flushed programs"),
        other => panic!("expected a flushed store, got {other:?}"),
    }
    let again = warm.compile(&tiny(8), Pipeline::Qiskit);
    assert_eq!(again.content_hash(), fp, "flushed entry serves the identical result");
    assert_eq!(warm.cache_stats().programs.hits, 1, "must be a pure disk-warm hit");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random job multisets: every response matches the reference
    /// compiler bit-for-bit, and the coalescing/completion accounting
    /// closes exactly (executed + coalesced = submitted).
    #[test]
    fn random_job_mixes_account_exactly(picks in proptest::collection::vec((0u64..3, 0usize..3), 1..12)) {
        let service = Service::start_with_compiler(
            small_compiler(),
            ServiceConfig { workers: 1, debug_ops: true, ..ServiceConfig::default() },
        );
        let pipelines = [Pipeline::Qiskit, Pipeline::Tket, Pipeline::QiskitSu4];
        let park = park_worker(&service, 100);
        let tickets: Vec<_> = picks
            .iter()
            .map(|&(s, p)| service.submit_compile(tiny(s), pipelines[p], DEFAULT_PRIORITY).expect("submit"))
            .collect();
        park.wait().expect("park");
        let reference = small_compiler();
        for (t, &(s, p)) in tickets.into_iter().zip(&picks) {
            let done = t.wait().expect("compile");
            let expect = reference.compile(&tiny(s), pipelines[p]);
            prop_assert_eq!(
                done.circuit.unwrap().as_ref(),
                &expect,
                "service result diverged from direct compile"
            );
        }
        let st = service.stats_snapshot().service;
        prop_assert_eq!(st.submitted, picks.len() as u64 + 1, "every request admitted (+park)");
        prop_assert_eq!(st.completed + st.coalesced, picks.len() as u64 + 1, "executed + attached = submitted");
        prop_assert_eq!(st.failed, 0u64);
        service.shutdown();
    }
}
