//! The end-to-end service acceptance test (stdio transport, everything
//! in-process): ≥8 jobs including duplicates through a first service
//! instance, disk-warm answers from a second instance sharing the cache
//! dir, stats JSON round-tripping, and GC/compaction shrinking a store
//! full of dead entries without changing any response fingerprint.

use reqisc_compiler::Compiler;
use reqisc_service::{serve_lines, Json, Service, ServiceConfig, StatsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn small_compiler() -> Compiler {
    use std::sync::OnceLock;
    static LIB: OnceLock<reqisc_synthesis::TemplateLibrary> = OnceLock::new();
    let mut c = Compiler::new_with_library(
        LIB.get_or_init(|| {
            let mut search = reqisc_synthesis::SearchOptions::default();
            search.sweep.restarts = 3;
            reqisc_synthesis::TemplateLibrary::builtin(&search)
        })
        .clone(),
    );
    c.hs.search.sweep.restarts = 2;
    c.hs.search.sweep.max_sweeps = 150;
    c
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reqisc-e2e-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const P1: &str = "qubits 3\\nccx 0 1 2\\nh 0\\n";
const P2: &str = "qubits 2\\ncx 0 1\\nrz 1 7.0e-1\\ncx 0 1\\n";
const P3: &str = "qubits 3\\ncx 0 1\\ncx 1 2\\nh 2\\ncx 0 2\\n";

/// The ≥8-job script: 8 compiles, two of them duplicates (ids 3 and 8
/// duplicate ids 2 and 4). A leading debug sleep parks the single worker
/// so the duplicates are *guaranteed* still in flight when they arrive.
fn compile_script(with_park: bool) -> String {
    let mut s = String::new();
    if with_park {
        s.push_str("{\"id\":1,\"op\":\"sleep\",\"ms\":150}\n");
    }
    s.push_str(&format!("{{\"id\":2,\"op\":\"compile\",\"pipeline\":\"reqisc-eff\",\"qasm\":\"{P1}\"}}\n"));
    s.push_str(&format!("{{\"id\":3,\"op\":\"compile\",\"pipeline\":\"reqisc-eff\",\"qasm\":\"{P1}\"}}\n"));
    s.push_str("{\"id\":4,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"bench\":\"alu_v0\"}\n");
    s.push_str(&format!("{{\"id\":5,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"{P2}\"}}\n"));
    s.push_str(&format!("{{\"id\":6,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"{P1}\"}}\n"));
    s.push_str(&format!("{{\"id\":7,\"op\":\"compile\",\"pipeline\":\"qiskit-su4\",\"qasm\":\"{P3}\"}}\n"));
    s.push_str("{\"id\":8,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"bench\":\"alu_v0\"}\n");
    s.push_str(&format!("{{\"id\":9,\"op\":\"compile\",\"pipeline\":\"tket\",\"qasm\":\"{P2}\"}}\n"));
    s.push_str("{\"id\":10,\"op\":\"stats\"}\n");
    s
}

/// Runs a script through one in-process service instance and returns the
/// responses by id (plus the raw stats member, if requested).
fn run_instance(config: ServiceConfig, script: &str) -> BTreeMap<u64, Json> {
    let service = Service::start_with_compiler(small_compiler(), config);
    let mut out: Vec<u8> = Vec::new();
    let outcome = serve_lines(&service, script.as_bytes(), &mut out).expect("serve");
    assert_eq!(outcome.requests, script.lines().count() as u64);
    service.shutdown();
    String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(|l| {
            let v = Json::parse(l).expect("response parses");
            (v.get("id").and_then(Json::as_u64).expect("id"), v)
        })
        .collect()
}

fn fingerprint(v: &Json) -> &str {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "not ok: {}", v.emit());
    v.get("fingerprint").and_then(Json::as_str).expect("fingerprint")
}

#[test]
fn service_end_to_end_coalesce_diskwarm_stats_and_gc() {
    let dir = scratch_dir("e2e");
    let compile_ids: Vec<u64> = (2..=9).collect();

    // ---- Instance 1: cold, with the park so duplicates coalesce. ----
    let first = run_instance(
        ServiceConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            debug_ops: true,
            ..ServiceConfig::default()
        },
        &compile_script(true),
    );
    // (a) coalesced duplicates: ids 3/8 joined in-flight ids 2/4 and
    // carry identical fingerprints.
    for (dup, orig) in [(3u64, 2u64), (8, 4)] {
        assert_eq!(first[&dup].get("coalesced").and_then(Json::as_bool), Some(true), "id {dup}");
        assert_eq!(fingerprint(&first[&dup]), fingerprint(&first[&orig]));
    }
    let stats1 = StatsSnapshot::from_json(first[&10].get("stats").expect("stats member"))
        .expect("stats parse");
    assert_eq!(stats1.service.coalesced, 2);
    assert_eq!(stats1.service.submitted, 9, "8 compiles + the park");
    assert_eq!(stats1.service.completed, 7, "6 distinct compiles + the park");
    assert_eq!(stats1.service.failed, 0);
    assert_eq!(stats1.cache.programs.misses, 6, "one miss per distinct job");

    // (c) the stats JSON round-trips every counter bit-for-bit.
    let reparsed = StatsSnapshot::from_json(
        &Json::parse(&stats1.to_json().emit()).expect("emit parses"),
    )
    .expect("round-trip");
    assert_eq!(reparsed, stats1);

    // ---- Instance 2: same cache dir, disk-warm. ----
    let size_after_first = std::fs::metadata(dir.join("reqisc-cache.bin")).expect("store").len();
    let second = run_instance(
        ServiceConfig { workers: 1, cache_dir: Some(dir.clone()), ..ServiceConfig::default() },
        &compile_script(false),
    );
    // (b) identical answers, ≥95% program-pool hits, zero rejected loads.
    for &id in &compile_ids {
        assert_eq!(fingerprint(&second[&id]), fingerprint(&first[&id]), "id {id} diverged");
    }
    let stats2 = StatsSnapshot::from_json(second[&10].get("stats").expect("stats member"))
        .expect("stats parse");
    let p = &stats2.cache.programs;
    assert!(p.lookups() > 0, "second instance must consult the program pool");
    assert!(
        p.hit_rate() >= 0.95,
        "disk-warm hit rate {:.1}% < 95% ({} hits / {} lookups)",
        100.0 * p.hit_rate(),
        p.hits,
        p.lookups()
    );
    let store2 = stats2.store.expect("instance 2 has a store");
    assert_eq!(store2.rejected, 0, "no rejected store loads");
    assert!(store2.loaded_entries > 0, "instance 2 warm-started from disk");

    // ---- Instance 3: touch only a subset, then GC. Everything the
    // subset does not reference is dead weight and must be dropped. ----
    let mut subset = String::new();
    subset.push_str(&format!(
        "{{\"id\":2,\"op\":\"compile\",\"pipeline\":\"reqisc-eff\",\"qasm\":\"{P1}\"}}\n"
    ));
    subset.push_str("{\"id\":4,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"bench\":\"alu_v0\"}\n");
    subset.push_str("{\"id\":11,\"op\":\"compact\",\"max_idle_gens\":0}\n");
    let third = run_instance(
        ServiceConfig { workers: 1, cache_dir: Some(dir.clone()), ..ServiceConfig::default() },
        &subset,
    );
    for id in [2u64, 4] {
        assert_eq!(fingerprint(&third[&id]), fingerprint(&first[&id]), "id {id} diverged");
    }
    let compacted = &third[&11];
    assert_eq!(compacted.get("ok").and_then(Json::as_bool), Some(true), "{}", compacted.emit());
    let dropped = compacted.get("dropped").and_then(Json::as_u64).expect("dropped");
    let kept = compacted.get("kept").and_then(Json::as_u64).expect("kept");
    assert!(dropped > 0, "the untouched entries were dead and must drop");
    assert!(kept >= 2, "the referenced subset survives");
    // (d) the file physically shrank…
    let size_after_gc = std::fs::metadata(dir.join("reqisc-cache.bin")).expect("store").len();
    assert!(
        size_after_gc < size_after_first,
        "compaction must shrink the store: {size_after_first} -> {size_after_gc}"
    );

    // …and no response fingerprint changes: a fourth instance re-answers
    // the full set (dropped entries recompile deterministically, kept
    // ones serve from disk).
    let fourth = run_instance(
        ServiceConfig { workers: 1, cache_dir: Some(dir.clone()), ..ServiceConfig::default() },
        &compile_script(false),
    );
    for &id in &compile_ids {
        assert_eq!(
            fingerprint(&fourth[&id]),
            fingerprint(&first[&id]),
            "id {id} changed after GC"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn socket_shutdown_completes_despite_an_idle_connection() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    let sock = std::env::temp_dir().join(format!("reqisc-e2e-idle-{}.sock", std::process::id()));
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    let served = std::thread::scope(|scope| {
        let service = &service;
        let sock_path = sock.clone();
        let server = scope.spawn(move || reqisc_service::serve_unix(service, &sock_path));
        // Wait for the socket to exist, then park an IDLE client on it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let idle = loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(10))
                }
                Err(e) => panic!("socket never came up: {e}"),
            }
        };
        // A second client asks for shutdown; the accept loop must return
        // even though the idle connection never speaks or hangs up.
        let active = UnixStream::connect(&sock).expect("connect");
        writeln!(&active, "{{\"id\":1,\"op\":\"shutdown\"}}").expect("write");
        let mut resp = String::new();
        BufReader::new(&active).read_line(&mut resp).expect("ack");
        assert!(resp.contains("\"ok\":true"), "shutdown ack: {resp}");
        let served = server.join().expect("server thread");
        drop(idle);
        served
    });
    served.expect("serve_unix must return cleanly");
    service.shutdown();
}

#[test]
fn protocol_errors_are_responses_not_failures() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    );
    let script = concat!(
        "not json at all\n",
        "{\"id\":1,\"op\":\"compile\",\"pipeline\":\"nope\",\"bench\":\"alu_v0\"}\n",
        "{\"id\":2,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"bench\":\"no_such_program\"}\n",
        "{\"id\":3,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"qubits 99\\ncx 0 1\\n\"}\n",
        "{\"id\":4,\"op\":\"sleep\",\"ms\":1}\n", // debug ops disabled here
        "{\"id\":5,\"op\":\"snapshot\"}\n",       // no store configured
        "{\"id\":6,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"qubits 2\\ncx 0 1\\n\"}\n",
    );
    let mut out: Vec<u8> = Vec::new();
    serve_lines(&service, script.as_bytes(), &mut out).expect("serve");
    service.shutdown();
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("parses"))
        .collect();
    assert_eq!(lines.len(), 7, "every line gets a response");
    let code = |i: usize| lines[i].get("error").and_then(Json::as_str).unwrap_or("").to_string();
    assert_eq!(code(0), "parse_error");
    assert_eq!(code(1), "parse_error", "unknown pipeline is caught at parse");
    assert_eq!(code(2), "bad_request");
    assert_eq!(code(3), "bad_request", "over-limit qasm rejected at the boundary");
    assert_eq!(code(4), "bad_request", "debug ops gated off");
    assert_eq!(code(5), "no_store");
    // The good request still went through on the same connection.
    assert_eq!(lines[6].get("ok").and_then(Json::as_bool), Some(true));
    assert!(lines[6].get("fingerprint").is_some());
}

/// The cross-daemon shared-cache acceptance: instance A (no store, no
/// peers) solves a workload and publishes into the shared segment;
/// instance B — a *different* service on the same segment, still no
/// store — answers the identical workload entirely from the segment:
/// every response fingerprint matches, `shared.hits` covers every
/// distinct program, and **zero** solve claims happen (no duplicate
/// solves for keys a peer already solved).
#[test]
fn shared_segment_makes_a_second_service_warm_without_a_store() {
    let shm = std::env::temp_dir().join(format!(
        "reqisc-e2e-shm-{}-{}.seg",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    ));
    let _ = std::fs::remove_file(&shm);
    let compile_ids: Vec<u64> = (2..=9).collect();
    let config = |cap: u64| ServiceConfig {
        workers: 1,
        shm_path: Some(shm.clone()),
        shm_capacity_bytes: cap,
        ..ServiceConfig::default()
    };

    let first = run_instance(config(4 << 20), &compile_script(false));
    let stats1 = StatsSnapshot::from_json(first[&10].get("stats").expect("stats member"))
        .expect("stats parse");
    let sh1 = stats1.shared.expect("instance 1 attached the segment");
    assert_eq!(sh1.hits, 0, "a cold segment answers nothing");
    assert!(sh1.published >= 6, "every distinct solve publishes: {sh1:?}");
    assert_eq!(sh1.full_rejects, 0);

    let second = run_instance(config(4 << 20), &compile_script(false));
    for &id in &compile_ids {
        assert_eq!(fingerprint(&second[&id]), fingerprint(&first[&id]), "id {id} diverged");
    }
    let stats2 = StatsSnapshot::from_json(second[&10].get("stats").expect("stats member"))
        .expect("stats parse");
    let sh2 = stats2.shared.expect("instance 2 attached the segment");
    assert_eq!(sh2.hits, 6, "every distinct program answered by the segment: {sh2:?}");
    assert_eq!(
        stats2.stages.solve_claimed, 0,
        "a segment-warm workload must never duplicate a peer's solve"
    );
    // A duplicate may coalesce with its still-in-flight original instead
    // of being routed itself; either way no compile goes cold.
    assert_eq!(
        stats2.stages.lookup_hits + stats2.service.coalesced,
        8,
        "all 8 compiles short-circuit warm or join a warm in-flight job"
    );
    assert!(
        sh2.hits <= stats2.stages.lookup_hits,
        "shared hits are a subset of lookup hits"
    );
    // Coalesced duplicates share their original's single completion.
    assert_eq!(stats2.service.completed + stats2.service.coalesced, 8);
    assert_eq!(stats2.service.failed, 0);
    let _ = std::fs::remove_file(&shm);
}
