//! Stage-isolation and drain tests of the pipelined service core:
//!
//! * **stall isolation, end to end** — a real `reqiscd` child process
//!   with the `REQISC_DEBUG_SOLVE_DELAY_MS` knob slowing every cold
//!   solve: warm requests must short-circuit in the lookup stage and
//!   complete while cold jobs occupy the (single) solve worker, proven
//!   by `done_seq` response ordering and the stage counters — never by
//!   wall time;
//! * **stall isolation, in process** — the same property through
//!   `ServiceConfig::solve_delay_ms`, with before/after stage-counter
//!   deltas;
//! * **shutdown drain** — shutdown while jobs sit in every stage
//!   (submission ring, solve ring, warm-served completion, a cancelled
//!   orphan): everything is responded or cleanly cancelled, every ring
//!   balances to empty, and the store snapshot still lands on disk.

use reqisc_compiler::{Compiler, LoadOutcome, Pipeline};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_service::{
    DebugOp, Json, Service, ServiceConfig, StatsSnapshot, Ticket, DEFAULT_PRIORITY,
};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_compiler() -> Compiler {
    use std::sync::OnceLock;
    static LIB: OnceLock<reqisc_synthesis::TemplateLibrary> = OnceLock::new();
    let mut c = Compiler::new_with_library(
        LIB.get_or_init(|| {
            let mut search = reqisc_synthesis::SearchOptions::default();
            search.sweep.restarts = 3;
            reqisc_synthesis::TemplateLibrary::builtin(&search)
        })
        .clone(),
    );
    c.hs.search.sweep.restarts = 2;
    c.hs.search.sweep.max_sweeps = 150;
    c
}

fn tiny(seed: u64) -> Arc<Circuit> {
    let mut c = Circuit::new(3);
    c.push(Gate::Ccx(0, 1, 2));
    c.push(Gate::H((seed % 3) as usize));
    c.push(Gate::Rz(1, 0.1 + seed as f64));
    Arc::new(c)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reqisc-pipeline-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parks the single solve worker on a sleep job and waits until the
/// worker has claimed it (admission gauge back to zero).
fn park_worker(service: &Service, ms: u64) -> Ticket {
    let t = service.submit_debug(DebugOp::Sleep { ms }, DEFAULT_PRIORITY).expect("park");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never claimed the park job");
        std::thread::yield_now();
    }
    t
}

/// Kills the daemon child on drop so a failing assertion can't leak a
/// process that holds the test's pipes open.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn read_response(reader: &mut impl BufRead) -> Json {
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("read response") > 0, "daemon hung up early");
    Json::parse(line.trim_end()).expect("response parses")
}

fn done_seq(resp: &Json) -> u64 {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "not ok: {}", resp.emit());
    resp.get("done_seq").and_then(Json::as_u64).expect("done_seq member")
}

/// End to end through a real daemon: with every cold solve slowed by the
/// `REQISC_DEBUG_SOLVE_DELAY_MS` env knob and a single solve worker,
/// warm requests submitted *behind* two cold requests must still
/// complete first — `done_seq` (assigned at delivery) proves the order,
/// and the stage counters prove the warm request never crossed into the
/// solve stage.
#[test]
fn stalled_solve_stage_does_not_block_warm_responses_e2e() {
    let mut child = ChildGuard(
        std::process::Command::new(env!("CARGO_BIN_EXE_reqiscd"))
            .args(["--stdio", "--workers", "1"])
            .env(reqisc_env::DEBUG_SOLVE_DELAY_MS.name, "300")
            .env_remove(reqisc_env::CACHE_DIR.name)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn reqiscd"),
    );
    let mut stdin = child.0.stdin.take().expect("child stdin");
    let mut reader = BufReader::new(child.0.stdout.take().expect("child stdout"));

    // Phase 1: prime the warm program, and *wait for its response* so
    // the warm re-request below is a pool hit, not an in-flight coalesce.
    const WARM: &str = "qubits 2\\ncx 0 1\\n";
    writeln!(stdin, "{{\"id\":1,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"{WARM}\"}}")
        .expect("write prime");
    stdin.flush().expect("flush");
    let prime = read_response(&mut reader);
    let seq_prime = done_seq(&prime);

    // Phase 2: two never-seen cold programs, then the warm re-request —
    // all in one write, so the warm request genuinely queues behind the
    // colds at the submission ring.
    let mut batch = String::new();
    batch.push_str("{\"id\":2,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"qubits 2\\ncx 0 1\\nrz 1 3.0e-1\\n\"}\n");
    batch.push_str("{\"id\":3,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"qubits 2\\ncx 0 1\\nrz 1 4.0e-1\\n\"}\n");
    batch.push_str(&format!(
        "{{\"id\":4,\"op\":\"compile\",\"pipeline\":\"qiskit\",\"qasm\":\"{WARM}\"}}\n"
    ));
    stdin.write_all(batch.as_bytes()).expect("write batch");
    stdin.flush().expect("flush");
    let (cold1, cold2, warm) =
        (read_response(&mut reader), read_response(&mut reader), read_response(&mut reader));
    let (seq_c1, seq_c2, seq_warm) = (done_seq(&cold1), done_seq(&cold2), done_seq(&warm));

    // Delivery order: prime, then the warm hit (while cold1 stalls in
    // the solve worker), then the colds in submission order.
    assert!(seq_prime < seq_warm, "prime must complete before its warm re-request");
    assert!(
        seq_warm < seq_c1 && seq_warm < seq_c2,
        "warm response must overtake both stalled colds: warm {seq_warm} colds {seq_c1}/{seq_c2}"
    );
    assert!(seq_c1 < seq_c2, "colds complete in submission order on one worker");
    assert_eq!(
        warm.get("fingerprint").and_then(Json::as_str),
        prime.get("fingerprint").and_then(Json::as_str),
        "the warm hit must serve the identical program"
    );

    // Phase 3: stats, requested only after every compile response was
    // read, so the snapshot is quiescent and the counters are exact.
    writeln!(stdin, "{{\"id\":5,\"op\":\"stats\"}}").expect("write stats");
    stdin.flush().expect("flush");
    let stats_resp = read_response(&mut reader);
    let stats = StatsSnapshot::from_json(stats_resp.get("stats").expect("stats member"))
        .expect("stats parse");
    assert_eq!(stats.stages.lookup_hits, 1, "exactly the one warm short-circuit");
    assert_eq!(stats.stages.lookup_misses, 3, "prime + two colds crossed to the solve ring");
    assert_eq!(stats.stages.solve_claimed, 3, "zero warm jobs entered the solve stage");
    assert_eq!(stats.stages.delivered, 4);
    assert_eq!(stats.service.completed, 4);
    assert_eq!(stats.service.failed, 0);

    drop(stdin); // EOF ends the stdio session; the daemon exits cleanly.
    let status = child.0.wait().expect("child exit");
    assert!(status.success(), "reqiscd must exit cleanly: {status:?}");
}

/// The same stall-isolation property in process, through the
/// `ServiceConfig::solve_delay_ms` field, asserted purely by
/// before/after stage-counter deltas and `done_seq` ordering.
#[test]
fn solve_delay_config_isolates_warm_traffic_in_process() {
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, solve_delay_ms: Some(250), ..ServiceConfig::default() },
    );
    // Prime two warm programs (each pays the configured stall once).
    for seed in 0..2 {
        service
            .submit_compile(tiny(seed), Pipeline::Qiskit, DEFAULT_PRIORITY)
            .expect("prime")
            .wait()
            .expect("prime compile");
    }
    let s0 = service.stats_snapshot();

    // Two cold jobs occupy the solve stage (250 ms stall each, one
    // worker); four warm requests then ride through serially.
    let colds: Vec<Ticket> = (10..12)
        .map(|seed| {
            service.submit_compile(tiny(seed), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("cold")
        })
        .collect();
    let mut warm_seqs = Vec::new();
    for seed in [0u64, 1, 0, 1] {
        let done = service
            .submit_compile(tiny(seed), Pipeline::Qiskit, DEFAULT_PRIORITY)
            .expect("warm")
            .wait()
            .expect("warm compile");
        warm_seqs.push(done.done_seq);
    }
    let mid = service.stats_snapshot();
    assert_eq!(mid.stages.lookup_hits - s0.stages.lookup_hits, 4, "all four warm short-circuits");
    assert!(
        mid.stages.solve_claimed - s0.stages.solve_claimed <= 2,
        "nothing beyond the two colds may ever be claimed"
    );

    let cold_seqs: Vec<u64> =
        colds.into_iter().map(|t| t.wait().expect("cold compile").done_seq).collect();
    assert!(
        warm_seqs.iter().all(|w| cold_seqs.iter().all(|c| w < c)),
        "every warm delivery must precede every stalled cold: warm {warm_seqs:?} cold {cold_seqs:?}"
    );
    assert!(warm_seqs.windows(2).all(|w| w[0] < w[1]), "warm order is submission order");

    let s1 = service.stats_snapshot();
    assert_eq!(s1.stages.lookup_misses - s0.stages.lookup_misses, 2, "only the colds miss");
    assert_eq!(s1.stages.solve_claimed - s0.stages.solve_claimed, 2, "zero warm solve claims");
    assert_eq!(s1.cache.programs.misses - s0.cache.programs.misses, 2);
    service.shutdown();
}

/// Shutdown with work in *every* stage: a parked solve worker, two cold
/// jobs still ringed, a warm job short-circuited, and an orphan whose
/// only ticket was dropped. Everything must be responded or cleanly
/// cancelled, every ring must balance to empty, and the store snapshot
/// must land — jobs never strand, results never vanish.
#[test]
fn shutdown_drains_jobs_across_all_stages() {
    let dir = scratch_dir("drain");
    let service = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            debug_ops: true,
            ..ServiceConfig::default()
        },
    );
    // Prime the warm program, then park the worker so the jobs below
    // are pinned in their rings when shutdown starts.
    let warm_fp = service
        .submit_compile(tiny(0), Pipeline::Qiskit, DEFAULT_PRIORITY)
        .expect("prime")
        .wait()
        .expect("prime compile")
        .circuit
        .expect("circuit")
        .content_hash();
    let park = park_worker(&service, 300);
    let cold1 = service.submit_compile(tiny(30), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("c1");
    let cold2 = service.submit_compile(tiny(31), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("c2");
    let warm = service.submit_compile(tiny(0), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("warm");
    // The orphan: its only client disconnects while the job is ringed
    // (the worker is parked, so it cannot have been claimed).
    let orphan = service.submit_compile(tiny(32), Pipeline::Qiskit, DEFAULT_PRIORITY).expect("o");
    drop(orphan);

    service.shutdown();

    // Every surviving ticket was responded — during or after the drain.
    park.wait().expect("park ran");
    let c1 = cold1.wait().expect("cold1 drained, not dropped");
    let c2 = cold2.wait().expect("cold2 drained, not dropped");
    assert!(c1.circuit.is_some() && c2.circuit.is_some());
    let (warm_result, extras) = warm.wait_counting_duplicates();
    let warm_done = warm_result.expect("warm served");
    assert_eq!(extras, 0, "one response per ticket, even through a drain");
    assert_eq!(warm_done.circuit.expect("circuit").content_hash(), warm_fp);

    // Accounting closes: 6 submissions; 5 completed (prime, park, two
    // colds, warm), 1 cancelled; nothing failed, nothing left in-system.
    let s = service.stats_snapshot();
    assert_eq!(s.service.submitted, 6);
    assert_eq!(s.service.completed, 5);
    assert_eq!(s.service.cancelled, 1, "the orphan was cancelled in-ring");
    assert_eq!(s.service.failed, 0);
    assert_eq!(s.service.queue_depth, 0);
    assert_eq!(s.stages.delivered, s.service.completed + s.service.failed);
    for (name, rc) in [
        ("submission", &s.stages.submission),
        ("solve", &s.stages.solve),
        ("completion", &s.stages.completion),
    ] {
        assert_eq!(rc.depth, 0, "{name} ring must drain to empty");
        assert_eq!(rc.enqueued, rc.dequeued, "{name} ring must balance");
    }

    // The shutdown snapshot landed: a second instance warm-starts from
    // disk and serves the drained cold job from the lookup stage.
    let second = Service::start_with_compiler(
        small_compiler(),
        ServiceConfig { workers: 1, cache_dir: Some(dir.clone()), ..ServiceConfig::default() },
    );
    match second.startup_load() {
        Some(LoadOutcome::Loaded { programs, .. }) => {
            assert!(*programs >= 3, "prime + both colds must be on disk: {programs}")
        }
        other => panic!("expected a flushed store, got {other:?}"),
    }
    let again = second
        .submit_compile(tiny(30), Pipeline::Qiskit, DEFAULT_PRIORITY)
        .expect("resubmit")
        .wait()
        .expect("disk-warm compile");
    assert_eq!(again.circuit.expect("circuit").content_hash(), c1.circuit.unwrap().content_hash());
    let s2 = second.stats_snapshot();
    assert_eq!(s2.stages.lookup_hits, 1, "drained result must be disk-warm, not recompiled");
    assert_eq!(s2.stages.solve_claimed, 0);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
