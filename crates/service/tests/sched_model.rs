//! Model-checked interleaving tests for the pipeline's sync sites.
//!
//! Run with `cargo test -p reqisc-service --features sched-model --test
//! sched_model`. Every test body builds its shared state *inside* the
//! closure handed to the explorer, uses only the shim primitives from
//! [`reqisc_service::sync`] / [`reqisc_sched::thread`], and is
//! deterministic — the three rules that make a recorded failure
//! schedule replayable.
//!
//! The tests pin the PR 5/7 conservation laws across **all** bounded
//! interleavings of small configs, not just the ones a lucky
//! wall-clock run happens to hit:
//!
//! * a queue/ring push wakes a blocked pop (no lost `Condvar` wakeup —
//!   `queue_push_wakes_blocked_pop` is the seeded-violation target of
//!   the CI `sched-check` smoke, which deletes `try_push`'s
//!   `notify_one` and expects a deadlock report with a schedule);
//! * lookup's claim-and-route transfer vs. last-waiter-out
//!   cancellation: the job is found in exactly one ring, always
//!   (`admitted == completed + cancelled`);
//! * two coalesced waiters racing last-waiter-out cancel exactly once;
//! * shutdown with in-flight solves drains every ring balanced
//!   (`enqueued == dequeued`, `delivered == admitted`).

#![cfg(feature = "sched-model")]

use reqisc_sched::thread::spawn;
use reqisc_sched::{check, explore, replay, ModelConfig};
use reqisc_service::sync::atomic::{AtomicU64, Ordering};
use reqisc_service::sync::{LockRecover, Mutex};
use reqisc_service::{FifoRing, JobQueue, TryPop, DEFAULT_PRIORITY};
use std::sync::Arc;

/// `JobQueue::try_push` must wake a consumer blocked in `pop`. This is
/// the lost-wakeup sentinel: the seeded CI smoke removes the
/// `notify_one` from `try_push` and this model — which deliberately
/// never calls `close()`, whose `notify_all` would mask the bug —
/// must then deadlock with a replayable schedule.
#[test]
fn queue_push_wakes_blocked_pop() {
    check("queue_push_wakes_blocked_pop", ModelConfig::default(), || {
        let q = Arc::new(JobQueue::<u32>::new(2));
        let qc = q.clone();
        let consumer = spawn(move || qc.pop());
        q.try_push(7, DEFAULT_PRIORITY).expect("queue has room");
        let got = consumer.join().expect("consumer ran to completion");
        assert_eq!(got, Some(7), "blocked pop observed the pushed job");
    });
}

/// Same wakeup law for the completion ring: `push_completion` must
/// wake a dispatcher blocked in `pop_completion`.
#[test]
fn ring_push_wakes_blocked_pop() {
    check("ring_push_wakes_blocked_pop", ModelConfig::default(), || {
        let r = Arc::new(FifoRing::<u32>::new());
        let rc = r.clone();
        let dispatcher = spawn(move || rc.pop_completion());
        assert!(r.push_completion(9), "ring is open");
        let got = dispatcher.join().expect("dispatcher ran to completion");
        assert_eq!(got, Some(9), "blocked pop_completion observed the completion");
    });
}

/// The lookup stage's claim-and-route transfer (`service.rs
/// lookup_loop`) holds the inflight lock across `try_pop` + route, so
/// last-waiter-out cancellation (`WaiterGuard::drop`), which removes
/// ring entries under the same lock, always finds the job in exactly
/// one ring: `submission.remove_first || solve.remove_first` succeeds
/// in every interleaving and the admission ledger stays balanced.
#[test]
fn lookup_claim_vs_cancel_conserves_the_job() {
    check("lookup_claim_vs_cancel", ModelConfig::default(), || {
        let submission = Arc::new(JobQueue::<u32>::new(2));
        let solve = Arc::new(JobQueue::<u32>::new(2));
        // `true` = the key is still in the inflight map (one waiter).
        let inflight = Arc::new(Mutex::new(true));
        let cancelled = Arc::new(AtomicU64::new(0));
        submission.try_push(1, DEFAULT_PRIORITY).expect("queue has room");

        let (sub_l, solve_l, infl_l) = (submission.clone(), solve.clone(), inflight.clone());
        let lookup = spawn(move || {
            // Mirrors lookup_loop: the inflight lock spans pop + push.
            let guard = infl_l.lock_recover();
            if let TryPop::Job(job, priority) = sub_l.try_pop() {
                solve_l.try_push(job, priority).expect("solve ring has room");
            }
            drop(guard);
        });

        let (sub_c, solve_c, infl_c, cancelled_c) =
            (submission.clone(), solve.clone(), inflight.clone(), cancelled.clone());
        let cancel = spawn(move || {
            // Mirrors WaiterGuard::drop: remove the key, then pull the
            // job out of whichever ring still holds it — same lock.
            let mut guard = infl_c.lock_recover();
            if *guard {
                *guard = false;
                if sub_c.remove_first(|_| true) || solve_c.remove_first(|_| true) {
                    cancelled_c.fetch_add(1, Ordering::Relaxed);
                }
            }
            drop(guard);
        });

        lookup.join().expect("lookup ran to completion");
        cancel.join().expect("cancel ran to completion");
        assert_eq!(
            cancelled.load(Ordering::Relaxed),
            1,
            "cancellation lost the in-flight job"
        );
        assert!(submission.is_empty() && solve.is_empty(), "no ring retains the job");
    });
}

/// The same scenario with the bug the lock order exists to prevent:
/// dropping the inflight lock between the claim (`try_pop`) and the
/// route (`try_push`) opens a window where cancellation finds the job
/// in *neither* ring and the admission ledger leaks. The explorer
/// must find that interleaving and hand back a deterministic,
/// replayable schedule.
#[test]
fn explorer_catches_unlocked_transfer_race() {
    let buggy = || {
        let submission = Arc::new(JobQueue::<u32>::new(2));
        let solve = Arc::new(JobQueue::<u32>::new(2));
        let inflight = Arc::new(Mutex::new(true));
        let cancelled = Arc::new(AtomicU64::new(0));
        submission.try_push(1, DEFAULT_PRIORITY).expect("queue has room");

        let (sub_l, solve_l, infl_l) = (submission.clone(), solve.clone(), inflight.clone());
        let lookup = spawn(move || {
            let guard = infl_l.lock_recover();
            let popped = sub_l.try_pop();
            drop(guard); // BUG: transfer window with no lock held
            if let TryPop::Job(job, priority) = popped {
                solve_l.try_push(job, priority).expect("solve ring has room");
            }
        });

        let (sub_c, solve_c, infl_c, cancelled_c) =
            (submission.clone(), solve.clone(), inflight.clone(), cancelled.clone());
        let cancel = spawn(move || {
            let mut guard = infl_c.lock_recover();
            if *guard {
                *guard = false;
                if sub_c.remove_first(|_| true) || solve_c.remove_first(|_| true) {
                    cancelled_c.fetch_add(1, Ordering::Relaxed);
                }
            }
            drop(guard);
        });

        lookup.join().expect("lookup ran to completion");
        cancel.join().expect("cancel ran to completion");
        assert_eq!(
            cancelled.load(Ordering::Relaxed),
            1,
            "cancellation lost the in-flight job"
        );
    };

    let report = explore(ModelConfig::default(), buggy);
    let failure = report.failure.expect("the unlocked transfer race must be found");
    assert!(
        failure.message.contains("cancellation lost the in-flight job"),
        "failure is the leaked admission slot, got: {}",
        failure.message
    );
    assert!(!failure.trace.is_empty(), "failure carries the step trace");
    assert!(!failure.schedule.is_empty(), "failure carries a replay schedule");

    // The schedule is a deterministic reproducer, not a one-off.
    let again = replay(ModelConfig::default(), &failure.schedule, buggy);
    let refound = again.failure.expect("replaying the schedule reproduces the race");
    assert_eq!(refound.message, failure.message);
}

/// Two coalesced waiters racing `WaiterGuard::drop`: whichever leaves
/// last — under the inflight lock — does the ring removal and the
/// `cancelled` increment, and does each exactly once in every
/// interleaving.
#[test]
fn coalesced_waiters_cancel_exactly_once() {
    check("coalesced_waiters_last_out", ModelConfig::default(), || {
        let submission = Arc::new(JobQueue::<u32>::new(2));
        // The inflight map's waiter list for the one shared key.
        let waiters = Arc::new(Mutex::new(vec![1u64, 2u64]));
        let cancelled = Arc::new(AtomicU64::new(0));
        submission.try_push(1, DEFAULT_PRIORITY).expect("queue has room");

        let handles: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|me| {
                let (sub, waiters, cancelled) =
                    (submission.clone(), waiters.clone(), cancelled.clone());
                spawn(move || {
                    let mut list = waiters.lock_recover();
                    list.retain(|id| *id != me);
                    if list.is_empty() && sub.remove_first(|_| true) {
                        cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(list);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("waiter drop ran to completion");
        }
        assert_eq!(
            cancelled.load(Ordering::Relaxed),
            1,
            "exactly one waiter performs the cancellation"
        );
        assert!(submission.is_empty(), "the job left the ring exactly once");
    });
}

/// Shutdown racing in-flight solves: the stages are closed in pipeline
/// order while the lookup / solve / dispatch threads are mid-transfer.
/// In every interleaving the rings drain balanced (`enqueued ==
/// dequeued` on each) and every admitted job is delivered.
#[test]
fn shutdown_with_inflight_solve_drains_balanced() {
    // One preemption is enough to interleave the close() calls into
    // every stage handoff; bound 2 here multiplies the schedule count
    // well past what a test budget buys in extra coverage.
    let cfg = ModelConfig { max_preemptions: 1, ..ModelConfig::default() };
    check("shutdown_drains_balanced", cfg, || {
        let submission = Arc::new(JobQueue::<u32>::new(4));
        let solve = Arc::new(JobQueue::<u32>::new(4));
        let completions = Arc::new(FifoRing::<u32>::new());
        let delivered = Arc::new(AtomicU64::new(0));
        const ADMITTED: u64 = 2;
        for job in 0..ADMITTED {
            submission.try_push(job as u32, DEFAULT_PRIORITY).expect("queue has room");
        }

        let (sub, solve_in) = (submission.clone(), solve.clone());
        let lookup = spawn(move || loop {
            match sub.try_pop() {
                TryPop::Job(job, priority) => {
                    solve_in.try_push(job, priority).expect("solve ring has room");
                }
                TryPop::Closed => return,
                TryPop::Empty => sub.wait_nonempty(),
            }
        });

        let (solve_out, ring_in) = (solve.clone(), completions.clone());
        let solver = spawn(move || {
            while let Some(job) = solve_out.pop() {
                assert!(ring_in.push_completion(job), "completion ring open while solving");
            }
        });

        let (ring_out, delivered_d) = (completions.clone(), delivered.clone());
        let dispatcher = spawn(move || {
            while ring_out.pop_completion().is_some() {
                delivered_d.fetch_add(1, Ordering::Relaxed);
            }
        });

        // Shutdown order from Service::shutdown: close each stage's
        // input only after the producing stage has been joined.
        submission.close();
        lookup.join().expect("lookup exited on close");
        solve.close();
        solver.join().expect("solver exited on close");
        completions.close();
        dispatcher.join().expect("dispatcher exited on close");

        assert_eq!(delivered.load(Ordering::Relaxed), ADMITTED, "delivered == admitted");
        for (name, stats) in [
            ("submission", submission.ring_stats()),
            ("solve", solve.ring_stats()),
            ("completions", completions.ring_stats()),
        ] {
            assert_eq!(
                stats.enqueued, stats.dequeued,
                "{name} ring drained balanced at shutdown"
            );
        }
    });
}

/// The shared-segment publish/probe protocol (`reqisc-shmem`), modeled
/// on shim atomics so the explorer covers every bounded interleaving:
/// the publisher writes the payload, Release-stores the commit word,
/// then claims the index slot (tag CAS, then Release offset store); the
/// prober walks the index with Acquire loads. The pinned laws: a probe
/// that reaches a record through the index **always** sees the commit
/// word and the payload (the Release/Acquire pair publishes both), and
/// a claimed-but-not-yet-linked slot (offset still 0) reads as a clean
/// miss, never as garbage.
#[test]
fn segment_probe_never_observes_uncommitted_payload() {
    check("shmem_publish_probe_commit_order", ModelConfig::default(), || {
        const COMMIT: u64 = 0x5251_0000_0000_0008;
        // One record (payload + commit word) and one index slot
        // (tag + offset), exactly the segment's per-entry atomics.
        let payload = Arc::new(AtomicU64::new(0));
        let commit = Arc::new(AtomicU64::new(0));
        let slot_tag = Arc::new(AtomicU64::new(0)); // 0 = SLOT_EMPTY
        let slot_off = Arc::new(AtomicU64::new(0)); // 0 = claim in flight

        let (pay_w, com_w, tag_w, off_w) =
            (payload.clone(), commit.clone(), slot_tag.clone(), slot_off.clone());
        let publisher = spawn(move || {
            // Segment::publish: plain payload writes, Release commit,
            // tag CAS claim, Release offset link — in that order.
            pay_w.store(42, Ordering::Relaxed);
            com_w.store(COMMIT, Ordering::Release);
            if tag_w.compare_exchange(0, 7, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                off_w.store(64, Ordering::Release);
            }
        });

        let probed = {
            let (pay_r, com_r, tag_r, off_r) =
                (payload.clone(), commit.clone(), slot_tag.clone(), slot_off.clone());
            let prober = spawn(move || {
                // Segment::probe: Acquire tag, Acquire offset; offset 0
                // = a claim in flight = a clean miss.
                if tag_r.load(Ordering::Acquire) != 7 {
                    return false;
                }
                let off = off_r.load(Ordering::Acquire);
                if off == 0 {
                    return false;
                }
                assert_eq!(off, 64, "linked offset is the published one");
                assert_eq!(
                    com_r.load(Ordering::Acquire),
                    COMMIT,
                    "an indexed record always shows its commit word"
                );
                assert_eq!(
                    pay_r.load(Ordering::Relaxed),
                    42,
                    "an indexed record always shows its payload"
                );
                true
            });
            prober.join().expect("prober ran to completion")
        };
        publisher.join().expect("publisher ran to completion");
        // After the publisher joined, the entry is definitely probeable.
        assert_eq!(slot_tag.load(Ordering::Acquire), 7);
        assert_eq!(slot_off.load(Ordering::Acquire), 64);
        let _ = probed; // any prober outcome (hit or in-flight miss) is legal mid-publish
    });
}

/// Two publishers racing the same key: the slot-tag CAS elects exactly
/// one winner in every interleaving, the loser reports `Duplicate`
/// without touching the slot, and the offset the index ends up holding
/// is the winner's own committed record — never a torn mix.
#[test]
fn segment_racing_publishers_elect_one_committed_winner() {
    check("shmem_racing_publishers", ModelConfig::default(), || {
        let commits = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let slot_tag = Arc::new(AtomicU64::new(0));
        let slot_off = Arc::new(AtomicU64::new(0));
        let wins = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = [0u64, 1u64]
            .into_iter()
            .map(|me| {
                let (commits, tag, off, wins) =
                    (commits.clone(), slot_tag.clone(), slot_off.clone(), wins.clone());
                spawn(move || {
                    // Each publisher appends its own record at a
                    // distinct offset (64 / 128), commits it…
                    commits[me as usize].store(1, Ordering::Release);
                    // …then tries to claim the shared slot.
                    if tag.compare_exchange(0, 7, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                        off.store(64 * (me + 1), Ordering::Release);
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                    // The loser's record stays unreachable log garbage —
                    // the first-writer-wins dedup contract.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("publisher ran to completion");
        }

        assert_eq!(wins.load(Ordering::Relaxed), 1, "exactly one CAS winner");
        let off = slot_off.load(Ordering::Acquire);
        assert!(off == 64 || off == 128, "slot holds a whole winner offset, got {off}");
        let winner = (off / 64 - 1) as usize;
        assert_eq!(
            commits[winner].load(Ordering::Acquire),
            1,
            "the indexed record is the committed one"
        );
    });
}
