//! Wire layout of the shared segment.
//!
//! Everything in the marked region below is load-bearing for
//! cross-process compatibility: two daemons attached to one segment
//! agree on these offsets the same way two runs of one daemon agree on
//! the `CacheStore` file layout. The region is fingerprinted into
//! `crates/lint/store_surface.lock`, so editing it without a
//! `STORE_FORMAT_VERSION` bump + `--update-store-registry` fails
//! `reqisc-lint --deny-all`.
//!
//! Segment layout (all field offsets 8-byte aligned):
//!
//! ```text
//! [0   .. 8  )  magic "RQSHSEG1"
//! [8   .. 12 )  format version (u32 LE; the caller passes
//!               STORE_FORMAT_VERSION so codec bumps invalidate
//!               segments exactly like they invalidate store files)
//! [12  .. 16 )  reserved (zero)
//! [16  .. 24 )  capacity_bytes (u64 LE; must equal the file length)
//! [24  .. 32 )  index_slots (u64 LE, power of two)
//! [32  .. 40 )  log_start (u64 LE, byte offset of the record log)
//! [40  .. 48 )  reserve cursor (AtomicU64: next append offset)
//! [48  .. 56 )  generation (AtomicU64: GC clock + seqlock word)
//! [56  .. 64 )  init marker (AtomicU64: INIT_DONE once published)
//! [64  .. 64 + 16*index_slots)  index: per slot
//!               { tag: AtomicU64, record offset: AtomicU64 }
//! [log_start .. capacity)  append-only record log
//! ```
//!
//! Record layout at an 8-aligned offset `off`:
//!
//! ```text
//! [off+0  .. off+8 )  commit word (AtomicU64:
//!                     COMMIT_TAG | payload_len; zero until the
//!                     Release store that commits the record)
//! [off+8  .. off+16)  checksum (u64 LE, folded FNV-128 of payload)
//! [off+16 .. off+24)  key hash (u64 LE, matches the index tag)
//! [off+24 .. off+32)  generation stamp (AtomicU64, last-touched)
//! [off+32 .. off+32+payload_len)  payload: ByteWriter-encoded
//!                     { pool: u8, key_len: usize, key bytes,
//!                       val_len: usize, val bytes }
//! ```

// lint:store-surface-begin
/// Magic bytes at offset 0 of every segment file.
pub const SEG_MAGIC: [u8; 8] = *b"RQSHSEG1";
/// Fixed header length; the index starts here.
pub const SEG_HEADER_LEN: u64 = 64;
/// Bytes per index slot: `{ tag: u64, record offset: u64 }`.
pub const SEG_SLOT_BYTES: u64 = 16;
/// Bytes of record header before the payload.
pub const REC_HEADER_LEN: u64 = 32;
/// Records are padded so every record offset stays 8-aligned.
pub const REC_ALIGN: u64 = 8;
/// High bits of a committed record's commit word ("RQ" << 48).
pub const COMMIT_TAG: u64 = 0x5251_0000_0000_0000;
/// Mask selecting the commit tag bits of the commit word.
pub const COMMIT_TAG_MASK: u64 = 0xFFFF_0000_0000_0000;
/// Mask selecting the payload length bits of the commit word.
pub const COMMIT_LEN_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;
/// Init-marker value published (Release) after the header is written.
pub const INIT_DONE: u64 = 0x5245_4144_5953_4547; // "READYSEG"
/// Index tag of a never-used slot (terminates probe chains).
pub const SLOT_EMPTY: u64 = 0;
/// Index tag of a scrubbed slot (probe chains continue past it).
pub const SLOT_TOMBSTONE: u64 = 1;

/// Header field offsets.
pub const OFF_MAGIC: u64 = 0;
/// Offset of the u32 format version.
pub const OFF_VERSION: u64 = 8;
/// Offset of the u64 capacity field.
pub const OFF_CAPACITY: u64 = 16;
/// Offset of the u64 index-slot count.
pub const OFF_SLOTS: u64 = 24;
/// Offset of the u64 log-start field.
pub const OFF_LOG_START: u64 = 32;
/// Offset of the atomic reserve (append) cursor.
pub const OFF_RESERVE: u64 = 40;
/// Offset of the atomic generation word.
pub const OFF_GENERATION: u64 = 48;
/// Offset of the atomic init marker.
pub const OFF_INIT: u64 = 56;
/// Offset of the first index slot.
pub const OFF_INDEX: u64 = 64;
// lint:store-surface-end

/// Smallest segment we will create: header + 1024-slot index + room
/// for real records.
pub const MIN_CAPACITY: u64 = 1 << 20;
/// Largest segment we will create (1 TiB; a sanity bound, not a goal).
pub const MAX_CAPACITY: u64 = 1 << 40;

/// Rounds `n` up to the record alignment.
pub fn align_rec(n: u64) -> u64 {
    (n + (REC_ALIGN - 1)) & !(REC_ALIGN - 1)
}

/// Index slot count for a segment of `capacity` bytes: one slot per
/// KiB of capacity, clamped to a power of two in `[1024, 2^22]`, so
/// the index never eats more than ~1/64 of the segment.
pub fn slots_for(capacity: u64) -> u64 {
    (capacity / 1024).next_power_of_two().clamp(1024, 1 << 22)
}

/// First valid record offset for a segment with `slots` index slots.
pub fn log_start_for(slots: u64) -> u64 {
    align_rec(OFF_INDEX + slots * SEG_SLOT_BYTES)
}
