#![warn(missing_docs)]
//! Crash-safe shared-memory cache segment.
//!
//! One mmap'd file hosts all three memo pools (program / synthesis /
//! pulse) for every `reqiscd` daemon on the box, as an append-only
//! record log plus a lock-free open-addressed index — the DAXFS idiom
//! applied to the compile cache. A writer publishes an entry by
//!
//! 1. appending the record bytes (payload framed with the
//!    `qmath::bytes` codec layer),
//! 2. a **Release** store of the record's committed length (checksum
//!    and key hash are already in place), then
//! 3. a **CAS** into the index slot.
//!
//! Readers validate the commit word, the checksum, and the seqlock
//! generation word, and never take a lock. A daemon killed mid-append
//! leaves only an uncommitted tail past the last indexed record; the
//! next *exclusive* attach (first process on the segment) scrubs the
//! index and truncates the reserve cursor back past that tail.
//!
//! Concurrency/crash discipline:
//!
//! * Every attached process holds a shared `flock` on the file for the
//!   segment's lifetime; the kernel drops it when the process dies.
//! * The first attacher wins the exclusive lock, initializes (or
//!   validates + recovers) the segment, then downgrades to shared.
//! * Committed records are immutable; the only mutable words are the
//!   header atomics, index slots, and per-record generation stamps.
//! * Generation stamps reuse the file-format-v2 GC story: probes stamp
//!   entries with the current generation, [`Segment::bump_generation`]
//!   advances the clock, and [`compact_file`] drops idle entries.

#[cfg(not(unix))]
compile_error!("reqisc-shmem requires a Unix platform (mmap/flock)");

pub mod layout;
mod sys;

use layout::*;
use reqisc_qmath::bytes::{ByteReader, ByteWriter};
use reqisc_qmath::Fnv128;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors surfaced by segment attach/compact.
#[derive(Debug)]
pub enum ShmError {
    /// Underlying filesystem / mmap failure.
    Io(std::io::Error),
    /// The segment file exists but is not a valid segment (and could
    /// not be re-initialized because other processes are attached).
    Corrupt(String),
    /// The segment was written by a different format version and other
    /// processes are attached, so it cannot be re-initialized now.
    Version {
        /// Version found in the segment header.
        found: u32,
        /// Version this build expected.
        expected: u32,
    },
    /// An exclusive operation (compaction) found other processes
    /// attached to the segment.
    Busy,
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::Io(e) => write!(f, "segment io error: {e}"),
            ShmError::Corrupt(m) => write!(f, "segment corrupt: {m}"),
            ShmError::Version { found, expected } => {
                write!(f, "segment format version {found}, expected {expected}")
            }
            ShmError::Busy => write!(f, "segment busy: other processes attached"),
        }
    }
}

impl std::error::Error for ShmError {}

impl From<std::io::Error> for ShmError {
    fn from(e: std::io::Error) -> Self {
        ShmError::Io(e)
    }
}

/// What happened to a [`Segment::publish`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The entry was appended and indexed.
    Published,
    /// An entry with this key already exists (first writer wins).
    Duplicate,
    /// The log or index has no room; the entry was not published.
    SegmentFull,
}

/// What the exclusive attach's recovery scrub found and repaired.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// True when this attach held the exclusive lock and scrubbed.
    pub ran: bool,
    /// True when the header was invalid/mismatched and the segment was
    /// re-initialized from scratch.
    pub reinitialized: bool,
    /// Valid entries that survived the scrub.
    pub live_entries: u64,
    /// Index slots that pointed at invalid/uncommitted records
    /// (tombstoned).
    pub dropped_records: u64,
    /// Index slots claimed by a writer that died before storing the
    /// record offset (tombstoned).
    pub stale_claims: u64,
    /// Bytes of uncommitted tail the reserve cursor was truncated past.
    pub reclaimed_bytes: u64,
}

/// Point-in-time segment statistics (per-handle counters + global
/// occupancy).
#[derive(Clone, Copy, Debug, Default)]
pub struct SegStats {
    /// Probes that returned an entry (this handle).
    pub probe_hits: u64,
    /// Probes that found nothing (this handle).
    pub probe_misses: u64,
    /// Entries this handle published.
    pub published: u64,
    /// Publishes skipped because the key was already present.
    pub duplicates: u64,
    /// Publishes rejected because the log or index was full.
    pub full_rejects: u64,
    /// Committed, indexed entries currently in the segment.
    pub entries: u64,
    /// Log bytes consumed (committed + any unreclaimed holes).
    pub bytes_used: u64,
    /// Total segment capacity in bytes.
    pub capacity: u64,
    /// Current GC generation.
    pub generation: u64,
}

/// Result of [`compact_file`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactReport {
    /// Entries carried into the compacted segment.
    pub kept: u64,
    /// Idle entries dropped.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
    published: AtomicU64,
    duplicates: AtomicU64,
    full_rejects: AtomicU64,
}

/// An attached shared-memory cache segment.
#[derive(Debug)]
pub struct Segment {
    map: sys::Mmap,
    // Holds the shared flock for the segment's lifetime; the kernel
    // releases it when the fd closes (including on SIGKILL).
    _file: File,
    path: PathBuf,
    capacity: u64,
    slots: u64,
    slot_mask: u64,
    log_start: u64,
    recovery: RecoveryReport,
    stats: StatCells,
}

// SAFETY: all mutation of the mapping goes through atomics or through
// regions exclusively reserved via the append cursor; the handle's own
// fields are immutable after attach (stats are atomics).
unsafe impl Send for Segment {}
// SAFETY: see above — `&Segment` methods only read immutable fields,
// atomics, and committed (immutable) records.
unsafe impl Sync for Segment {}

enum ProbeStep {
    Hit(Vec<u8>),
    Miss,
    Retry,
}

struct RecordView {
    pool: u8,
    key: Vec<u8>,
    val: Vec<u8>,
    stamp: u64,
    end: u64,
}

fn fold128(h: u128) -> u64 {
    (h as u64) ^ ((h >> 64) as u64)
}

fn fnv_bytes(f: &mut Fnv128, b: &[u8]) {
    f.write_usize(b.len());
    for &x in b {
        f.write_u8(x);
    }
}

fn checksum_bytes(b: &[u8]) -> u64 {
    let mut f = Fnv128::new();
    fnv_bytes(&mut f, b);
    fold128(f.finish())
}

fn key_hash(pool: u8, key: &[u8]) -> u64 {
    let mut f = Fnv128::new();
    f.write_u8(pool);
    fnv_bytes(&mut f, key);
    fold128(f.finish())
}

/// Index tags 0 and 1 are reserved (empty / tombstone); remap a hash
/// that lands on them. Collisions are fine — readers compare full keys.
fn slot_tag(h: u64) -> u64 {
    if h <= SLOT_TOMBSTONE {
        h + 2
    } else {
        h
    }
}

impl Segment {
    /// Attaches to (creating / initializing / recovering as needed) the
    /// segment at `path`.
    ///
    /// `capacity_bytes` is used only when the segment is (re)created;
    /// an existing valid segment keeps its own capacity. `version` is
    /// the caller's `STORE_FORMAT_VERSION`: a mismatched existing
    /// segment is re-initialized when this process is the only
    /// attacher, and rejected otherwise.
    pub fn attach(
        path: impl AsRef<Path>,
        capacity_bytes: u64,
        version: u32,
    ) -> Result<Segment, ShmError> {
        let path = path.as_ref();
        // A shared attacher can lose a race with a crashed initializer
        // or a concurrent compaction rename; retry from scratch.
        for _ in 0..4 {
            if let Some(seg) = Self::attach_once(path, capacity_bytes, version)? {
                return Ok(seg);
            }
        }
        Err(ShmError::Corrupt(
            "segment initialization did not settle after retries".into(),
        ))
    }

    fn attach_once(
        path: &Path,
        capacity_bytes: u64,
        version: u32,
    ) -> Result<Option<Segment>, ShmError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let exclusive = sys::flock_try_exclusive(&file)?;
        if !exclusive {
            sys::flock_shared(&file)?;
        }
        // A compaction may have renamed a fresh segment over `path`
        // while we waited on the lock; if our fd no longer backs the
        // path, start over against the new file.
        {
            use std::os::unix::fs::MetadataExt;
            let here = file.metadata()?;
            match std::fs::metadata(path) {
                Ok(at_path) if at_path.ino() == here.ino() && at_path.dev() == here.dev() => {}
                _ => return Ok(None),
            }
        }
        let file_len = file.metadata()?.len();

        if exclusive {
            let mut reinitialized = false;
            let mut map = None;
            if file_len >= SEG_HEADER_LEN {
                let m = sys::Mmap::map(&file, file_len as usize)?;
                if Self::header_valid(&m, file_len, version) {
                    map = Some(m);
                }
            }
            let map = match map {
                Some(m) => m,
                None => {
                    reinitialized = file_len > 0;
                    let capacity = align_rec(capacity_bytes.clamp(MIN_CAPACITY, MAX_CAPACITY));
                    // set_len(0) first so a stale file's bytes cannot
                    // leak into the zero-filled fresh segment.
                    file.set_len(0)?;
                    file.set_len(capacity)?;
                    let m = sys::Mmap::map(&file, capacity as usize)?;
                    Self::write_header(&m, capacity, version);
                    m
                }
            };
            let mut seg = Self::from_map(map, file, path)?;
            if reinitialized {
                seg.recovery.ran = true;
                seg.recovery.reinitialized = true;
            } else {
                seg.scrub();
            }
            // Open the segment to other attachers.
            sys::flock_shared(&seg._file)?;
            return Ok(Some(seg));
        }

        // Shared path: the segment must already be initialized. If the
        // initializer died before publishing the marker, retry — we may
        // win the exclusive lock next round.
        if file_len < SEG_HEADER_LEN {
            return Ok(None);
        }
        let map = sys::Mmap::map(&file, file_len as usize)?;
        if !Self::header_valid(&map, file_len, version) {
            let found = Self::read_u32_in(&map, OFF_VERSION);
            let magic_ok = Self::read_bytes_in(&map, OFF_MAGIC, 8) == SEG_MAGIC;
            if magic_ok && found != version {
                return Err(ShmError::Version { found, expected: version });
            }
            return Ok(None);
        }
        Ok(Some(Self::from_map(map, file, path)?))
    }

    fn from_map(map: sys::Mmap, file: File, path: &Path) -> Result<Segment, ShmError> {
        let capacity = Self::read_u64_in(&map, OFF_CAPACITY);
        let slots = Self::read_u64_in(&map, OFF_SLOTS);
        let log_start = Self::read_u64_in(&map, OFF_LOG_START);
        Ok(Segment {
            map,
            _file: file,
            path: path.to_path_buf(),
            capacity,
            slots,
            slot_mask: slots - 1,
            log_start,
            recovery: RecoveryReport::default(),
            stats: StatCells::default(),
        })
    }

    fn header_valid(map: &sys::Mmap, file_len: u64, version: u32) -> bool {
        if Self::read_bytes_in(map, OFF_MAGIC, 8) != SEG_MAGIC {
            return false;
        }
        if Self::read_u32_in(map, OFF_VERSION) != version {
            return false;
        }
        // SAFETY: offset is within the header of a mapped file.
        let init = unsafe { &*(map.base().add(OFF_INIT as usize) as *const AtomicU64) };
        if init.load(Ordering::Acquire) != INIT_DONE {
            return false;
        }
        let capacity = Self::read_u64_in(map, OFF_CAPACITY);
        let slots = Self::read_u64_in(map, OFF_SLOTS);
        let log_start = Self::read_u64_in(map, OFF_LOG_START);
        capacity == file_len
            && slots.is_power_of_two()
            && (1024..=1 << 22).contains(&slots)
            && log_start == log_start_for(slots)
            && log_start < capacity
    }

    fn write_header(map: &sys::Mmap, capacity: u64, version: u32) {
        let slots = slots_for(capacity);
        let log_start = log_start_for(slots);
        Self::write_bytes_in(map, OFF_MAGIC, &SEG_MAGIC);
        Self::write_bytes_in(map, OFF_VERSION, &version.to_le_bytes());
        Self::write_bytes_in(map, OFF_CAPACITY, &capacity.to_le_bytes());
        Self::write_bytes_in(map, OFF_SLOTS, &slots.to_le_bytes());
        Self::write_bytes_in(map, OFF_LOG_START, &log_start.to_le_bytes());
        // SAFETY: OFF_RESERVE is an 8-aligned header offset of a mapped file.
        let reserve = unsafe { &*(map.base().add(OFF_RESERVE as usize) as *const AtomicU64) };
        reserve.store(log_start, Ordering::Relaxed);
        // SAFETY: OFF_GENERATION is an 8-aligned header offset, as above.
        let gen = unsafe { &*(map.base().add(OFF_GENERATION as usize) as *const AtomicU64) };
        gen.store(1, Ordering::Relaxed);
        // SAFETY: OFF_INIT is an 8-aligned header offset, as above.
        let init = unsafe { &*(map.base().add(OFF_INIT as usize) as *const AtomicU64) };
        // Release: publishes every plain header write above to any
        // shared attacher whose validation Acquire-loads the marker.
        init.store(INIT_DONE, Ordering::Release);
    }

    fn read_bytes_in(map: &sys::Mmap, off: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        // SAFETY: caller stays within the mapping; a concurrent writer
        // never touches these committed/header bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(map.base().add(off as usize), out.as_mut_ptr(), len);
        }
        out
    }

    fn read_u32_in(map: &sys::Mmap, off: u64) -> u32 {
        u32::from_le_bytes(Self::read_bytes_in(map, off, 4).try_into().unwrap())
    }

    fn read_u64_in(map: &sys::Mmap, off: u64) -> u64 {
        u64::from_le_bytes(Self::read_bytes_in(map, off, 8).try_into().unwrap())
    }

    fn write_bytes_in(map: &sys::Mmap, off: u64, bytes: &[u8]) {
        // SAFETY: callers write only to the header during exclusive
        // init or into a log region exclusively reserved via the cursor.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), map.base().add(off as usize), bytes.len());
        }
    }

    fn atomic(&self, off: u64) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8) && off + 8 <= self.capacity);
        // SAFETY: 8-aligned offset inside the mapping; cross-process
        // atomics on a MAP_SHARED file hit the same physical memory.
        unsafe { &*(self.map.base().add(off as usize) as *const AtomicU64) }
    }

    fn copy_out(&self, off: u64, len: usize) -> Vec<u8> {
        Self::read_bytes_in(&self.map, off, len)
    }

    /// Filesystem path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// What this attach's recovery pass (if any) found.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Current GC generation.
    pub fn generation(&self) -> u64 {
        self.atomic(OFF_GENERATION).load(Ordering::Acquire)
    }

    /// Advances the GC generation clock (call on the same cadence as
    /// the store's snapshot/GC tick) and returns the new value.
    pub fn bump_generation(&self) -> u64 {
        self.atomic(OFF_GENERATION).fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Log bytes consumed so far (committed records plus any
    /// unreclaimed holes from crashed writers).
    pub fn bytes_used(&self) -> u64 {
        self.atomic(OFF_RESERVE)
            .load(Ordering::Relaxed)
            .saturating_sub(self.log_start)
    }

    /// Looks up `key` in `pool`, returning a copy of the value bytes.
    /// Lock-free; stamps the entry with the current generation.
    pub fn probe(&self, pool: u8, key: &[u8]) -> Option<Vec<u8>> {
        // The generation word changes only under maintenance
        // (scrub/compact); one retry absorbs a benign GC-tick bump.
        for _ in 0..2 {
            match self.probe_once(pool, key, true) {
                ProbeStep::Hit(v) => {
                    self.stats.probe_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(v);
                }
                ProbeStep::Miss => break,
                ProbeStep::Retry => continue,
            }
        }
        self.stats.probe_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    // lint:protocol-begin(probe)
    // The lock-free read side: Acquire the index slot and the record's
    // commit word before trusting any entry byte; validate by checksum;
    // never write entry bytes (the generation stamp is Relaxed atomic
    // maintenance). Checked by the publish-protocol lint rule.
    fn probe_once(&self, pool: u8, key: &[u8], stamp: bool) -> ProbeStep {
        let gen_before = self.atomic(OFF_GENERATION).load(Ordering::Acquire);
        let h = key_hash(pool, key);
        let tag = slot_tag(h);
        let mut i = h & self.slot_mask;
        for _ in 0..self.slots {
            let slot = OFF_INDEX + i * SEG_SLOT_BYTES;
            let t = self.atomic(slot).load(Ordering::Acquire);
            if t == SLOT_EMPTY {
                return ProbeStep::Miss;
            }
            if t == tag {
                let off = self.atomic(slot + 8).load(Ordering::Acquire);
                if off != 0 {
                    if let Some(rec) = self.read_record(off) {
                        if rec.pool == pool && rec.key == key {
                            if stamp {
                                self.atomic(off + 24)
                                    .store(self.generation(), Ordering::Relaxed);
                            }
                            if self.atomic(OFF_GENERATION).load(Ordering::Acquire) != gen_before {
                                return ProbeStep::Retry;
                            }
                            return ProbeStep::Hit(rec.val);
                        }
                    }
                }
                // Collision, in-flight publish, or invalid record:
                // keep walking the chain.
            }
            i = (i + 1) & self.slot_mask;
        }
        ProbeStep::Miss
    }

    fn read_record(&self, off: u64) -> Option<RecordView> {
        if off < self.log_start || !off.is_multiple_of(REC_ALIGN) || off + REC_HEADER_LEN > self.capacity {
            return None;
        }
        let commit = self.atomic(off).load(Ordering::Acquire);
        if commit & COMMIT_TAG_MASK != COMMIT_TAG {
            return None;
        }
        let len = commit & COMMIT_LEN_MASK;
        if off + REC_HEADER_LEN + len > self.capacity {
            return None;
        }
        let want_sum = u64::from_le_bytes(self.copy_out(off + 8, 8).try_into().unwrap());
        let payload = self.copy_out(off + REC_HEADER_LEN, len as usize);
        if checksum_bytes(&payload) != want_sum {
            return None;
        }
        let mut r = ByteReader::new(&payload);
        let pool = r.get_u8().ok()?;
        let key_len = r.get_count(1).ok()?;
        let key = r.get_bytes(key_len).ok()?.to_vec();
        let val_len = r.get_count(1).ok()?;
        let val = r.get_bytes(val_len).ok()?.to_vec();
        if !r.is_exhausted() {
            return None;
        }
        // lint:allow(publish-protocol, the stamp is GC metadata and never gates entry-byte reads; the commit word above was Acquired)
        let stamp = self.atomic(off + 24).load(Ordering::Relaxed);
        Some(RecordView {
            pool,
            key,
            val,
            stamp,
            end: off + align_rec(REC_HEADER_LEN + len),
        })
    }
    // lint:protocol-end(probe)

    /// Publishes `key → val` into `pool`, stamped with the current
    /// generation. First writer wins; see [`PublishOutcome`].
    pub fn publish(&self, pool: u8, key: &[u8], val: &[u8]) -> PublishOutcome {
        let stamp = self.generation();
        self.publish_with_stamp(pool, key, val, stamp)
    }

    // lint:protocol-begin(publish)
    // The lock-free write side: plain payload/checksum/hash writes into
    // an exclusively reserved log region, then the Release commit-word
    // store, then the index-handoff CAS (AcqRel success) — in that
    // order. Checked by the publish-protocol lint rule: the commit store
    // is the region's first Release store, nothing plain may follow it,
    // and the last CAS must come after it with >= Release success.
    /// [`Segment::publish`] with an explicit generation stamp — used
    /// when seeding from a store file or compacting, so the
    /// file-format-v2 last-referenced stamps carry over.
    pub fn publish_with_stamp(
        &self,
        pool: u8,
        key: &[u8],
        val: &[u8],
        stamp: u64,
    ) -> PublishOutcome {
        // Cheap pre-check so re-publishing a warm pool doesn't burn log
        // space; the index insert below re-checks under the race.
        if let ProbeStep::Hit(_) = self.probe_once(pool, key, false) {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            return PublishOutcome::Duplicate;
        }

        let mut w = ByteWriter::new();
        w.put_u8(pool);
        w.put_usize(key.len());
        w.put_bytes(key);
        w.put_usize(val.len());
        w.put_bytes(val);
        let payload = w.into_bytes();
        if payload.len() as u64 > COMMIT_LEN_MASK {
            self.stats.full_rejects.fetch_add(1, Ordering::Relaxed);
            return PublishOutcome::SegmentFull;
        }
        let rec_size = align_rec(REC_HEADER_LEN + payload.len() as u64);

        // (a) reserve + append. The CAS loop (rather than fetch_add)
        // keeps the cursor inside the capacity bound forever.
        let reserve = self.atomic(OFF_RESERVE);
        let mut cur = reserve.load(Ordering::Relaxed);
        let off = loop {
            if cur < self.log_start || cur + rec_size > self.capacity {
                self.stats.full_rejects.fetch_add(1, Ordering::Relaxed);
                return PublishOutcome::SegmentFull;
            }
            match reserve.compare_exchange_weak(
                cur,
                cur + rec_size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break cur,
                Err(now) => cur = now,
            }
        };
        Self::write_bytes_in(&self.map, off + REC_HEADER_LEN, &payload);
        Self::write_bytes_in(&self.map, off + 8, &checksum_bytes(&payload).to_le_bytes());
        let h = key_hash(pool, key);
        Self::write_bytes_in(&self.map, off + 16, &h.to_le_bytes());
        self.atomic(off + 24).store(stamp, Ordering::Relaxed);

        // (b) commit: Release-publish the plain writes above.
        self.atomic(off)
            .store(COMMIT_TAG | payload.len() as u64, Ordering::Release);

        // (c) CAS into the index.
        self.index_insert(pool, key, h, off)
    }

    fn index_insert(&self, pool: u8, key: &[u8], h: u64, off: u64) -> PublishOutcome {
        let tag = slot_tag(h);
        let mut i = h & self.slot_mask;
        let mut attempts = 0u64;
        while attempts < self.slots * 2 {
            attempts += 1;
            let slot = OFF_INDEX + i * SEG_SLOT_BYTES;
            let t = self.atomic(slot).load(Ordering::Acquire);
            if t == SLOT_EMPTY || t == SLOT_TOMBSTONE {
                if self
                    .atomic(slot)
                    .compare_exchange(t, tag, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.atomic(slot + 8).store(off, Ordering::Release);
                    self.stats.published.fetch_add(1, Ordering::Relaxed);
                    return PublishOutcome::Published;
                }
                // Lost the claim race; re-examine this same slot.
                i = i.wrapping_sub(1) & self.slot_mask;
            } else if t == tag {
                let other = self.atomic(slot + 8).load(Ordering::Acquire);
                if other != 0 && other != off {
                    if let Some(rec) = self.read_record(other) {
                        if rec.pool == pool && rec.key == key {
                            // Someone beat us to this key; our appended
                            // record stays unreachable (log garbage, not
                            // corruption).
                            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                            return PublishOutcome::Duplicate;
                        }
                    }
                }
            }
            i = (i + 1) & self.slot_mask;
        }
        self.stats.full_rejects.fetch_add(1, Ordering::Relaxed);
        PublishOutcome::SegmentFull
    }
    // lint:protocol-end(publish)

    /// Visits every committed, indexed entry:
    /// `f(pool, key, val, generation_stamp)`.
    pub fn for_each<F: FnMut(u8, &[u8], &[u8], u64)>(&self, mut f: F) {
        for i in 0..self.slots {
            let slot = OFF_INDEX + i * SEG_SLOT_BYTES;
            let t = self.atomic(slot).load(Ordering::Acquire);
            if t == SLOT_EMPTY || t == SLOT_TOMBSTONE {
                continue;
            }
            let off = self.atomic(slot + 8).load(Ordering::Acquire);
            if off == 0 {
                continue;
            }
            if let Some(rec) = self.read_record(off) {
                f(rec.pool, &rec.key, &rec.val, rec.stamp);
            }
        }
    }

    /// Number of committed, indexed entries (cheap: commit words only,
    /// no checksum validation).
    pub fn entries(&self) -> u64 {
        let mut n = 0;
        for i in 0..self.slots {
            let slot = OFF_INDEX + i * SEG_SLOT_BYTES;
            let t = self.atomic(slot).load(Ordering::Acquire);
            if t == SLOT_EMPTY || t == SLOT_TOMBSTONE {
                continue;
            }
            let off = self.atomic(slot + 8).load(Ordering::Acquire);
            if off == 0 || off < self.log_start || off + REC_HEADER_LEN > self.capacity {
                continue;
            }
            if self.atomic(off).load(Ordering::Acquire) & COMMIT_TAG_MASK == COMMIT_TAG {
                n += 1;
            }
        }
        n
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> SegStats {
        SegStats {
            probe_hits: self.stats.probe_hits.load(Ordering::Relaxed),
            probe_misses: self.stats.probe_misses.load(Ordering::Relaxed),
            published: self.stats.published.load(Ordering::Relaxed),
            duplicates: self.stats.duplicates.load(Ordering::Relaxed),
            full_rejects: self.stats.full_rejects.load(Ordering::Relaxed),
            entries: self.entries(),
            bytes_used: self.bytes_used(),
            capacity: self.capacity,
            generation: self.generation(),
        }
    }

    /// Exclusive-attach recovery: tombstone index slots pointing at
    /// invalid records and stale claims, then truncate the reserve
    /// cursor back past the uncommitted tail a crashed writer left.
    fn scrub(&mut self) {
        let mut live = 0u64;
        let mut dropped = 0u64;
        let mut stale = 0u64;
        let mut committed_end = self.log_start;
        let mut changed = false;
        for i in 0..self.slots {
            let slot = OFF_INDEX + i * SEG_SLOT_BYTES;
            let t = self.atomic(slot).load(Ordering::Acquire);
            if t == SLOT_EMPTY || t == SLOT_TOMBSTONE {
                continue;
            }
            let off = self.atomic(slot + 8).load(Ordering::Acquire);
            match self.read_record(off) {
                Some(rec) if off != 0 => {
                    live += 1;
                    committed_end = committed_end.max(rec.end);
                }
                _ => {
                    // Zero the offset BEFORE tombstoning so a later
                    // reuse of the slot can never expose a stale offset.
                    self.atomic(slot + 8).store(0, Ordering::Release);
                    self.atomic(slot).store(SLOT_TOMBSTONE, Ordering::Release);
                    if off == 0 {
                        stale += 1;
                    } else {
                        dropped += 1;
                    }
                    changed = true;
                }
            }
        }
        let reserve = self.atomic(OFF_RESERVE);
        let cur = reserve.load(Ordering::Relaxed);
        let mut reclaimed = 0;
        if !(self.log_start..=self.capacity).contains(&cur) || cur > committed_end {
            if (self.log_start..=self.capacity).contains(&cur) {
                reclaimed = cur - committed_end;
            }
            reserve.store(committed_end, Ordering::Relaxed);
            changed = changed || reclaimed > 0;
        }
        if changed {
            // Seqlock bump: in-flight probes from *this* process (none
            // yet — we hold the exclusive lock) would retry.
            self.atomic(OFF_GENERATION).fetch_add(1, Ordering::Release);
        }
        self.recovery = RecoveryReport {
            ran: true,
            reinitialized: false,
            live_entries: live,
            dropped_records: dropped,
            stale_claims: stale,
            reclaimed_bytes: reclaimed,
        };
    }

    /// Test hook: reserve and fill a record's payload region but skip
    /// the commit store and index CAS — byte-for-byte the state a
    /// writer killed mid-append leaves behind.
    #[doc(hidden)]
    pub fn debug_append_uncommitted(&self, payload_len: usize) -> Option<u64> {
        let rec_size = align_rec(REC_HEADER_LEN + payload_len as u64);
        let reserve = self.atomic(OFF_RESERVE);
        let mut cur = reserve.load(Ordering::Relaxed);
        let off = loop {
            if cur < self.log_start || cur + rec_size > self.capacity {
                return None;
            }
            match reserve.compare_exchange_weak(
                cur,
                cur + rec_size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break cur,
                Err(now) => cur = now,
            }
        };
        let junk = vec![0xA5u8; payload_len];
        Self::write_bytes_in(&self.map, off + REC_HEADER_LEN, &junk);
        Some(off)
    }
}

/// Compacts the segment at `path` in place: entries whose generation
/// stamp is more than `max_idle_gens` behind the current generation are
/// dropped; the rest (and the generation clock) carry over into a fresh
/// segment atomically renamed over `path`.
///
/// Requires exclusive access — fails with [`ShmError::Busy`] while any
/// process (including this one) is attached.
pub fn compact_file(
    path: impl AsRef<Path>,
    capacity_bytes: u64,
    version: u32,
    max_idle_gens: u64,
) -> Result<CompactReport, ShmError> {
    let path = path.as_ref();
    {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if !sys::flock_try_exclusive(&file)? {
            return Err(ShmError::Busy);
        }
        // Lock released when `file` drops; attach below re-takes it.
        // No other process can slip in between: they would need the
        // exclusive lock too (file is valid, so they go shared — a
        // shared attacher seeing the old inode after our rename
        // retries via the inode check).
    }
    let old = Segment::attach(path, capacity_bytes, version)?;
    let gen = old.generation();
    let floor = gen.saturating_sub(max_idle_gens);
    let tmp = path.with_extension("seg-compact-tmp");
    let _ = std::fs::remove_file(&tmp);
    let fresh = Segment::attach(&tmp, old.capacity(), version)?;
    let mut report = CompactReport::default();
    let mut overflowed = false;
    old.for_each(|pool, key, val, stamp| {
        if stamp >= floor {
            match fresh.publish_with_stamp(pool, key, val, stamp) {
                PublishOutcome::SegmentFull => overflowed = true,
                _ => report.kept += 1,
            }
        } else {
            report.dropped += 1;
        }
    });
    if overflowed {
        let _ = std::fs::remove_file(&tmp);
        return Err(ShmError::Corrupt(
            "compacted entries exceed segment capacity".into(),
        ));
    }
    fresh.atomic(OFF_GENERATION).store(gen, Ordering::Release);
    drop(fresh);
    std::fs::rename(&tmp, path)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static NEXT: AtomicU32 = AtomicU32::new(0);

    fn tmp_path(tag: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "reqisc-shmem-{tag}-{}-{n}.seg",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    const V: u32 = 999;

    #[test]
    fn publish_probe_roundtrip_and_persistence() {
        let path = tmp_path("roundtrip");
        let _c = Cleanup(path.clone());
        {
            let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
            assert!(seg.recovery().ran);
            assert_eq!(seg.entries(), 0);
            assert_eq!(seg.publish(1, b"alpha", b"one"), PublishOutcome::Published);
            assert_eq!(seg.publish(2, b"alpha", b"two"), PublishOutcome::Published);
            assert_eq!(seg.publish(1, b"alpha", b"xxx"), PublishOutcome::Duplicate);
            assert_eq!(seg.probe(1, b"alpha").unwrap(), b"one");
            assert_eq!(seg.probe(2, b"alpha").unwrap(), b"two");
            assert!(seg.probe(3, b"alpha").is_none());
            assert!(seg.probe(1, b"beta").is_none());
            let st = seg.stats();
            assert_eq!((st.published, st.duplicates, st.entries), (2, 1, 2));
            assert_eq!((st.probe_hits, st.probe_misses), (2, 2));
        }
        // Fresh attach sees the same entries (exclusive now: we were
        // the only attacher and dropped the lock).
        let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        let r = seg.recovery();
        assert!(r.ran && !r.reinitialized);
        assert_eq!(r.live_entries, 2);
        assert_eq!(r.dropped_records + r.stale_claims, 0);
        assert_eq!(seg.probe(1, b"alpha").unwrap(), b"one");
        assert_eq!(seg.probe(2, b"alpha").unwrap(), b"two");
    }

    #[test]
    fn shared_attach_sees_live_publishes() {
        let path = tmp_path("shared");
        let _c = Cleanup(path.clone());
        let a = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        let b = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        assert!(!b.recovery().ran, "second attacher must not scrub");
        assert_eq!(a.publish(1, b"k", b"v"), PublishOutcome::Published);
        assert_eq!(b.probe(1, b"k").unwrap(), b"v");
        assert_eq!(b.publish(1, b"k", b"w"), PublishOutcome::Duplicate);
    }

    #[test]
    fn uncommitted_tail_is_invisible_and_truncated_on_reattach() {
        let path = tmp_path("tail");
        let _c = Cleanup(path.clone());
        let used_before;
        {
            let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
            assert_eq!(seg.publish(1, b"live", b"entry"), PublishOutcome::Published);
            used_before = seg.bytes_used();
            seg.debug_append_uncommitted(4096).unwrap();
            assert!(seg.bytes_used() > used_before);
            // Survivor view: the tail is unreachable, entries consistent.
            assert_eq!(seg.entries(), 1);
            assert_eq!(seg.probe(1, b"live").unwrap(), b"entry");
        }
        let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        let r = seg.recovery();
        assert!(r.ran);
        assert_eq!(r.live_entries, 1);
        assert!(r.reclaimed_bytes >= 4096, "tail not reclaimed: {r:?}");
        assert_eq!(seg.bytes_used(), used_before);
        assert_eq!(seg.probe(1, b"live").unwrap(), b"entry");
        // The reclaimed space is appendable again.
        assert_eq!(seg.publish(1, b"new", b"entry2"), PublishOutcome::Published);
    }

    #[test]
    fn version_mismatch_reinitializes_when_exclusive() {
        let path = tmp_path("version");
        let _c = Cleanup(path.clone());
        {
            let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
            seg.publish(1, b"k", b"v");
        }
        let seg = Segment::attach(&path, MIN_CAPACITY, V + 1).unwrap();
        assert!(seg.recovery().reinitialized);
        assert_eq!(seg.entries(), 0);
        // And a live shared attacher with the wrong version is refused.
        let err = Segment::attach(&path, MIN_CAPACITY, V).unwrap_err();
        match err {
            ShmError::Version { found, expected } => {
                assert_eq!((found, expected), (V + 1, V));
            }
            other => panic!("expected version error, got {other}"),
        }
    }

    #[test]
    fn segment_full_is_a_clean_reject() {
        let path = tmp_path("full");
        let _c = Cleanup(path.clone());
        let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        let big = vec![7u8; 64 * 1024];
        let mut published = 0u64;
        let mut full = false;
        for i in 0..64u64 {
            match seg.publish(1, &i.to_le_bytes(), &big) {
                PublishOutcome::Published => published += 1,
                PublishOutcome::SegmentFull => {
                    full = true;
                    break;
                }
                PublishOutcome::Duplicate => unreachable!(),
            }
        }
        assert!(full, "1 MiB segment should not fit 64×64KiB");
        assert!(published > 0);
        assert_eq!(seg.entries(), published);
        // Everything published before the reject is intact.
        for i in 0..published {
            assert_eq!(seg.probe(1, &i.to_le_bytes()).unwrap(), big);
        }
        assert!(seg.stats().full_rejects > 0);
    }

    #[test]
    fn generation_stamps_drive_compaction() {
        let path = tmp_path("compact");
        let _c = Cleanup(path.clone());
        {
            let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
            seg.publish(1, b"old", b"cold");
            for _ in 0..4 {
                seg.bump_generation();
            }
            seg.publish(1, b"new", b"warm");
            // Probing re-stamps: "old" would survive if touched.
            assert_eq!(seg.generation(), 5);
        }
        let report = compact_file(&path, MIN_CAPACITY, V, 2).unwrap();
        assert_eq!((report.kept, report.dropped), (1, 1));
        let seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        assert_eq!(seg.generation(), 5, "generation clock carries over");
        assert!(seg.probe(1, b"old").is_none());
        assert_eq!(seg.probe(1, b"new").unwrap(), b"warm");
    }

    #[test]
    fn compact_refuses_while_attached() {
        let path = tmp_path("busy");
        let _c = Cleanup(path.clone());
        let _seg = Segment::attach(&path, MIN_CAPACITY, V).unwrap();
        match compact_file(&path, MIN_CAPACITY, V, 2) {
            Err(ShmError::Busy) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_publishers_conserve_entries_in_process() {
        let path = tmp_path("threads");
        let _c = Cleanup(path.clone());
        let seg = std::sync::Arc::new(Segment::attach(&path, MIN_CAPACITY, V).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let seg = seg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let key = [t.to_le_bytes(), i.to_le_bytes()].concat();
                    let val = (t * 1000 + i).to_le_bytes();
                    assert_eq!(seg.publish(1, &key, &val), PublishOutcome::Published);
                    assert_eq!(seg.probe(1, &key).unwrap(), val);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seg.entries(), 200);
        for t in 0..4u64 {
            for i in 0..50u64 {
                let key = [t.to_le_bytes(), i.to_le_bytes()].concat();
                assert_eq!(seg.probe(1, &key).unwrap(), (t * 1000 + i).to_le_bytes());
            }
        }
    }
}
