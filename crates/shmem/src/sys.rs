//! Thin `mmap`/`flock` bindings against the system libc.
//!
//! The build environment has no crates.io access, so the `libc` crate
//! is unavailable; `std` already links the platform libc, and these
//! two calls are all the crate needs, so we declare the prototypes
//! directly. Unix-only — the crate refuses to build elsewhere.

#![cfg(unix)]

use std::fs::File;
use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;

const LOCK_SH: c_int = 1;
const LOCK_EX: c_int = 2;
const LOCK_NB: c_int = 4;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn flock(fd: c_int, operation: c_int) -> c_int;
}

/// A shared, writable mapping of the whole segment file.
#[derive(Debug)]
pub struct Mmap {
    base: *mut u8,
    len: usize,
}

impl Mmap {
    /// Maps `len` bytes of `file` shared + read/write.
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        assert!(len > 0, "cannot map an empty segment");
        // SAFETY: a fresh anonymous-address shared file mapping; the fd
        // is valid for the duration of the call and `len` is nonzero.
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if base as isize == -1 || base.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { base: base as *mut u8, len })
    }

    /// Base address of the mapping.
    pub fn base(&self) -> *mut u8 {
        self.base
    }

}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `base`/`len` came from a successful mmap and are
        // unmapped exactly once.
        unsafe {
            munmap(self.base as *mut c_void, self.len);
        }
    }
}

/// Tries to take the exclusive (initializer/recovery) lock without
/// blocking. Returns `false` when another process already holds a lock.
pub fn flock_try_exclusive(file: &File) -> io::Result<bool> {
    // SAFETY: plain syscall on a valid fd.
    let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
    if rc == 0 {
        return Ok(true);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::WouldBlock {
        return Ok(false);
    }
    Err(err)
}

/// Takes (or downgrades to) the shared attach lock, blocking until the
/// initializer finishes. Every attached process holds this for its
/// lifetime; the kernel releases it if the process dies.
pub fn flock_shared(file: &File) -> io::Result<()> {
    // SAFETY: plain syscall on a valid fd.
    let rc = unsafe { flock(file.as_raw_fd(), LOCK_SH) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}
