//! Crash-safety tests that use *real* child processes.
//!
//! The test binary re-executes itself (filtered to [`shmem_child`])
//! with `RQSHMEM_*` env vars selecting a role; the parent then SIGKILLs
//! the writer (`Child::kill`) and asserts both the survivor's live view
//! and a fresh attach see a consistent segment with zero corrupt
//! entries. The env vars are deliberately not `REQISC_*`-prefixed:
//! they are process-internal test plumbing, not operator knobs, and the
//! `env-registry` lint enforces that split.

use reqisc_shmem::{PublishOutcome, Segment};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

const V: u32 = 4242;
const CAPACITY: u64 = 4 << 20;

static NEXT: AtomicU32 = AtomicU32::new(0);

fn tmp_path(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("reqisc-shmem-crash-{tag}-{}-{n}.seg", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Deterministic per-key value so interleaved publishers of the same
/// key can never disagree.
fn val_for(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h.to_le_bytes().to_vec()
}

fn spawn_child(role: &str, path: &std::path::Path, extra: &[(&str, String)]) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args(["shmem_child", "--exact", "--nocapture"])
        .env("RQSHMEM_ROLE", role)
        .env("RQSHMEM_PATH", path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn child test process")
}

/// Child dispatcher. With no `RQSHMEM_ROLE` set (a normal test run)
/// this is a no-op pass; under a role it becomes the writer process
/// the parent tests crash or race against.
#[test]
fn shmem_child() {
    let role = match std::env::var("RQSHMEM_ROLE") {
        Ok(r) => r,
        Err(_) => return,
    };
    let path = PathBuf::from(std::env::var("RQSHMEM_PATH").expect("RQSHMEM_PATH"));
    let seg = Segment::attach(&path, CAPACITY, V).expect("child attach");
    match role.as_str() {
        // Publish forever (the parent SIGKILLs us at a random point —
        // possibly mid-append).
        "publish-loop" => {
            let payload = vec![0x42u8; 8 * 1024];
            for i in 0u64.. {
                let key = format!("loop-{i}");
                let mut val = val_for(key.as_bytes());
                val.extend_from_slice(&payload);
                seg.publish(1, key.as_bytes(), &val);
            }
        }
        // Publish a known set, then park in exactly the mid-append
        // state (payload reserved + written, commit word never stored)
        // and wait for the SIGKILL.
        "tail-then-hang" => {
            let count: u64 = std::env::var("RQSHMEM_COUNT").unwrap().parse().unwrap();
            for i in 0..count {
                let key = format!("tail-{i}");
                assert_eq!(
                    seg.publish(1, key.as_bytes(), &val_for(key.as_bytes())),
                    PublishOutcome::Published
                );
            }
            seg.debug_append_uncommitted(8 * 1024).expect("reserve tail");
            println!("TAIL-READY");
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        // Publish a finite prefixed set and exit cleanly (conservation
        // proptest runs two of these concurrently).
        "pubset" => {
            let count: u64 = std::env::var("RQSHMEM_COUNT").unwrap().parse().unwrap();
            let prefix = std::env::var("RQSHMEM_PREFIX").unwrap();
            for i in 0..count {
                let key = format!("{prefix}-{i}");
                let out = seg.publish(1, key.as_bytes(), &val_for(key.as_bytes()));
                assert_ne!(out, PublishOutcome::SegmentFull, "segment full in child");
            }
        }
        other => panic!("unknown child role {other:?}"),
    }
}

/// Kill -9 a writer at an arbitrary point in its publish loop: the
/// surviving attached process and a fresh attach must both read a
/// consistent segment — every indexed entry validates, zero corrupt
/// entries — regardless of where the kill landed.
#[test]
fn kill9_random_point_leaves_consistent_segment() {
    let path = tmp_path("kill9-random");
    let _c = Cleanup(path.clone());
    let survivor = Segment::attach(&path, CAPACITY, V).expect("parent attach");
    let mut child = spawn_child("publish-loop", &path, &[]);

    let deadline = Instant::now() + Duration::from_secs(30);
    while survivor.entries() < 50 {
        assert!(Instant::now() < deadline, "child published too slowly");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL writer");
    child.wait().expect("reap writer");

    // Survivor view: every indexed entry must validate (for_each only
    // yields checksum-valid records), and the keys the writer fully
    // published must round-trip.
    let indexed = survivor.entries();
    assert!(indexed >= 50);
    let mut valid = 0u64;
    survivor.for_each(|pool, key, val, _stamp| {
        assert_eq!(pool, 1);
        assert_eq!(&val[..8], &val_for(key)[..8], "corrupt entry for {key:?}");
        valid += 1;
    });
    assert_eq!(valid, indexed, "indexed entries that fail validation");
    // The writer publishes keys in order, so every key below the
    // indexed count must be present (the kill can only have cost the
    // one in-flight record).
    for i in 0..indexed.saturating_sub(1) {
        let key = format!("loop-{i}");
        assert!(
            survivor.probe(1, key.as_bytes()).is_some(),
            "fully-published key {key} lost"
        );
    }

    // Fresh attach (sole attacher → recovery scrub runs): zero corrupt
    // entries, identical live set, any uncommitted tail truncated.
    drop(survivor);
    let fresh = Segment::attach(&path, CAPACITY, V).expect("fresh attach");
    let r = fresh.recovery();
    assert!(r.ran && !r.reinitialized);
    assert_eq!(r.dropped_records, 0, "no index slot may point at garbage");
    assert_eq!(r.stale_claims, 0);
    assert_eq!(r.live_entries, indexed);
    assert_eq!(fresh.entries(), indexed);
    // And the segment is still writable.
    assert_eq!(
        fresh.publish(2, b"post-crash", b"ok"),
        PublishOutcome::Published
    );
}

/// Deterministic mid-append kill: the child parks with a reserved,
/// half-written, uncommitted record (exactly the state a SIGKILL inside
/// the append leaves) and is then killed. The next attach must truncate
/// the reserve cursor back past that tail and keep every committed
/// entry.
#[test]
fn kill9_mid_append_truncates_uncommitted_tail() {
    let path = tmp_path("kill9-tail");
    let _c = Cleanup(path.clone());
    const COUNT: u64 = 25;
    let mut child = spawn_child("tail-then-hang", &path, &[("RQSHMEM_COUNT", COUNT.to_string())]);
    {
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "child never reached TAIL-READY");
            match lines.next() {
                Some(Ok(line)) if line.contains("TAIL-READY") => break,
                Some(Ok(_)) => continue,
                other => panic!("child stdout ended early: {other:?}"),
            }
        }
    }
    child.kill().expect("SIGKILL writer mid-append");
    child.wait().expect("reap writer");

    let seg = Segment::attach(&path, CAPACITY, V).expect("attach after crash");
    let r = seg.recovery();
    assert!(r.ran && !r.reinitialized);
    assert_eq!(r.live_entries, COUNT);
    assert_eq!(r.dropped_records, 0);
    assert!(
        r.reclaimed_bytes >= 8 * 1024,
        "uncommitted tail not truncated: {r:?}"
    );
    for i in 0..COUNT {
        let key = format!("tail-{i}");
        assert_eq!(
            seg.probe(1, key.as_bytes()).expect("committed entry lost"),
            val_for(key.as_bytes())
        );
    }
    // The reclaimed tail is usable again.
    assert_eq!(seg.publish(1, b"reuse", b"tail"), PublishOutcome::Published);
}

/// Conservation under real cross-process interleaving: two processes
/// publish disjoint random-sized sets concurrently; the segment must
/// end up holding exactly the union.
#[test]
fn interleaved_publishes_conserve_union() {
    use proptest::prelude::*;

    let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
    runner.run(&(1u64..40, 1u64..40), |(n_a, n_b)| {
        let path = tmp_path("conserve");
        let _c = Cleanup(path.clone());
        let a = spawn_child(
            "pubset",
            &path,
            &[("RQSHMEM_COUNT", n_a.to_string()), ("RQSHMEM_PREFIX", "a".into())],
        );
        let b = spawn_child(
            "pubset",
            &path,
            &[("RQSHMEM_COUNT", n_b.to_string()), ("RQSHMEM_PREFIX", "b".into())],
        );
        for mut child in [a, b] {
            let status = child.wait().expect("reap publisher");
            prop_assert!(status.success(), "publisher child failed: {status:?}");
        }

        let seg = Segment::attach(&path, CAPACITY, V).expect("attach after publishers");
        let mut expected: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (prefix, n) in [("a", n_a), ("b", n_b)] {
            for i in 0..n {
                let key = format!("{prefix}-{i}").into_bytes();
                let val = val_for(&key);
                expected.insert(key, val);
            }
        }
        let mut found: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        seg.for_each(|pool, key, val, _stamp| {
            prop_assert_eq!(pool, 1);
            let prior = found.insert(key.to_vec(), val.to_vec());
            prop_assert!(prior.is_none(), "key indexed twice: {:?}", key);
        });
        prop_assert_eq!(found.len(), expected.len(), "union size mismatch");
        for (key, val) in &expected {
            prop_assert_eq!(found.get(key), Some(val), "missing {:?}", key);
        }
        prop_assert_eq!(seg.entries(), expected.len() as u64);
    });
}
