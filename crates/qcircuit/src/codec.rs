//! Binary codec for [`Gate`] and [`Circuit`] — the value format of the
//! persistent compile store's whole-program pool.
//!
//! Encoding is deterministic and exact (angles and SU(4) matrices
//! round-trip bit-for-bit, so a reloaded circuit has the same
//! [`Circuit::content_hash`] as the one saved). Decoding is total: every
//! branch bounds-checks and validates qubit indices against the declared
//! register width, so corrupted input yields a [`CodecError`], never a
//! panic. Gate tags are append-only — adding a variant appends a new tag
//! and bumps the store format version; existing tags never renumber.

use crate::circuit::Circuit;
use crate::gate::Gate;
use reqisc_qmath::bytes::{read_cmat, read_weyl, write_cmat, write_weyl};
use reqisc_qmath::{ByteReader, ByteWriter, CodecError};

/// Encodes one gate (tag byte + fields).
pub fn write_gate(w: &mut ByteWriter, g: &Gate) {
    use Gate::*;
    match g {
        X(q) => put1(w, 0, *q),
        Y(q) => put1(w, 1, *q),
        Z(q) => put1(w, 2, *q),
        H(q) => put1(w, 3, *q),
        S(q) => put1(w, 4, *q),
        Sdg(q) => put1(w, 5, *q),
        T(q) => put1(w, 6, *q),
        Tdg(q) => put1(w, 7, *q),
        Rx(q, a) => put1a(w, 8, *q, &[*a]),
        Ry(q, a) => put1a(w, 9, *q, &[*a]),
        Rz(q, a) => put1a(w, 10, *q, &[*a]),
        U3(q, t, p, l) => put1a(w, 11, *q, &[*t, *p, *l]),
        Cx(a, b) => put2(w, 12, *a, *b),
        Cz(a, b) => put2(w, 13, *a, *b),
        Swap(a, b) => put2(w, 14, *a, *b),
        ISwap(a, b) => put2(w, 15, *a, *b),
        SqiSw(a, b) => put2(w, 16, *a, *b),
        BGate(a, b) => put2(w, 17, *a, *b),
        Rzz(a, b, th) => {
            put2(w, 18, *a, *b);
            w.put_f64(*th);
        }
        Can(a, b, c) => {
            put2(w, 19, *a, *b);
            write_weyl(w, c);
        }
        Su4(a, b, m) => {
            put2(w, 20, *a, *b);
            write_cmat(w, m);
        }
        Ccx(a, b, c) => {
            put2(w, 21, *a, *b);
            w.put_usize(*c);
        }
        Peres(a, b, c) => {
            put2(w, 22, *a, *b);
            w.put_usize(*c);
        }
        Mcx(cs, t) => {
            w.put_u8(23);
            w.put_usize(cs.len());
            for c in cs {
                w.put_usize(*c);
            }
            w.put_usize(*t);
        }
    }
}

fn put1(w: &mut ByteWriter, tag: u8, q: usize) {
    w.put_u8(tag);
    w.put_usize(q);
}

fn put1a(w: &mut ByteWriter, tag: u8, q: usize, angles: &[f64]) {
    put1(w, tag, q);
    for a in angles {
        w.put_f64(*a);
    }
}

fn put2(w: &mut ByteWriter, tag: u8, a: usize, b: usize) {
    w.put_u8(tag);
    w.put_usize(a);
    w.put_usize(b);
}

/// Decodes one gate.
///
/// # Errors
///
/// [`CodecError`] on truncation or an unknown tag.
pub fn read_gate(r: &mut ByteReader<'_>) -> Result<Gate, CodecError> {
    use Gate::*;
    let tag = r.get_u8()?;
    Ok(match tag {
        0 => X(r.get_usize()?),
        1 => Y(r.get_usize()?),
        2 => Z(r.get_usize()?),
        3 => H(r.get_usize()?),
        4 => S(r.get_usize()?),
        5 => Sdg(r.get_usize()?),
        6 => T(r.get_usize()?),
        7 => Tdg(r.get_usize()?),
        8 => Rx(r.get_usize()?, r.get_f64()?),
        9 => Ry(r.get_usize()?, r.get_f64()?),
        10 => Rz(r.get_usize()?, r.get_f64()?),
        11 => U3(r.get_usize()?, r.get_f64()?, r.get_f64()?, r.get_f64()?),
        12 => Cx(r.get_usize()?, r.get_usize()?),
        13 => Cz(r.get_usize()?, r.get_usize()?),
        14 => Swap(r.get_usize()?, r.get_usize()?),
        15 => ISwap(r.get_usize()?, r.get_usize()?),
        16 => SqiSw(r.get_usize()?, r.get_usize()?),
        17 => BGate(r.get_usize()?, r.get_usize()?),
        18 => Rzz(r.get_usize()?, r.get_usize()?, r.get_f64()?),
        19 => {
            let (a, b) = (r.get_usize()?, r.get_usize()?);
            Can(a, b, read_weyl(r)?)
        }
        20 => {
            let (a, b) = (r.get_usize()?, r.get_usize()?);
            let m = read_cmat(r)?;
            if m.rows() != 4 || m.cols() != 4 {
                return Err(CodecError::new(format!(
                    "Su4 block must be 4x4, got {}x{}",
                    m.rows(),
                    m.cols()
                )));
            }
            Su4(a, b, Box::new(m))
        }
        21 => Ccx(r.get_usize()?, r.get_usize()?, r.get_usize()?),
        22 => Peres(r.get_usize()?, r.get_usize()?, r.get_usize()?),
        23 => {
            let n = r.get_count(8)?;
            let mut cs = Vec::with_capacity(n);
            for _ in 0..n {
                cs.push(r.get_usize()?);
            }
            Mcx(cs, r.get_usize()?)
        }
        other => return Err(CodecError::new(format!("unknown gate tag {other}"))),
    })
}

/// Encodes a circuit: register width, gate count, gates.
pub fn write_circuit(w: &mut ByteWriter, c: &Circuit) {
    w.put_usize(c.num_qubits());
    w.put_usize(c.len());
    for g in c.gates() {
        write_gate(w, g);
    }
}

/// Decodes a circuit, validating every gate's qubit indices against the
/// declared register width (so [`Circuit::from_gates`]'s panic can never
/// be reached from untrusted bytes).
///
/// # Errors
///
/// [`CodecError`] on truncation, unknown tags, or out-of-range qubits.
pub fn read_circuit(r: &mut ByteReader<'_>) -> Result<Circuit, CodecError> {
    let num_qubits = r.get_usize()?;
    // Workspace-wide operators are dense 2^n matrices; a width beyond 64
    // can only be corruption.
    if num_qubits > 64 {
        return Err(CodecError::new(format!("implausible register width {num_qubits}")));
    }
    let n = r.get_count(2)?;
    let mut gates = Vec::with_capacity(n);
    for _ in 0..n {
        let g = read_gate(r)?;
        let qs = g.qubits();
        if qs.iter().any(|&q| q >= num_qubits) {
            return Err(CodecError::new(format!(
                "gate {} touches a qubit outside the {num_qubits}-qubit register",
                g.name()
            )));
        }
        // `Circuit::from_gates` also asserts distinctness; check it here
        // so untrusted bytes can never reach that panic.
        if (1..qs.len()).any(|i| qs[..i].contains(&qs[i])) {
            return Err(CodecError::new(format!("gate {} repeats a qubit", g.name())));
        }
        gates.push(g);
    }
    Ok(Circuit::from_gates(num_qubits, gates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;
    use reqisc_qmath::WeylCoord;

    fn sample_gates() -> Vec<Gate> {
        vec![
            Gate::X(0),
            Gate::Y(1),
            Gate::Z(2),
            Gate::H(0),
            Gate::S(1),
            Gate::Sdg(2),
            Gate::T(0),
            Gate::Tdg(1),
            Gate::Rx(0, -0.25),
            Gate::Ry(1, 1.75),
            Gate::Rz(2, std::f64::consts::PI),
            Gate::U3(0, 0.1, -0.2, 0.3),
            Gate::Cx(0, 1),
            Gate::Cz(1, 2),
            Gate::Swap(0, 2),
            Gate::ISwap(1, 0),
            Gate::SqiSw(2, 1),
            Gate::BGate(0, 1),
            Gate::Rzz(1, 2, 0.7),
            Gate::Can(0, 1, WeylCoord::new(0.3, 0.2, -0.1)),
            Gate::Su4(1, 2, Box::new(qg::iswap())),
            Gate::Ccx(0, 1, 2),
            Gate::Peres(2, 1, 0),
            Gate::Mcx(vec![0, 1], 2),
        ]
    }

    #[test]
    fn every_gate_variant_roundtrips_bitwise() {
        let c = Circuit::from_gates(3, sample_gates());
        let mut w = ByteWriter::new();
        write_circuit(&mut w, &c);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_circuit(&mut r).expect("roundtrip");
        assert!(r.is_exhausted());
        assert_eq!(back, c);
        // Bit-exactness is the contract the program pool's content
        // addressing relies on.
        assert_eq!(back.content_hash(), c.content_hash());
    }

    #[test]
    fn truncation_and_bad_tags_fail_cleanly() {
        let c = Circuit::from_gates(3, sample_gates());
        let mut w = ByteWriter::new();
        write_circuit(&mut w, &c);
        let bytes = w.into_bytes();
        // Every truncation point decodes to an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(read_circuit(&mut ByteReader::new(&bytes[..cut])).is_err(), "cut {cut}");
        }
        // Unknown tag.
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_usize(1);
        w.put_u8(200);
        let bad = w.into_bytes();
        assert!(read_circuit(&mut ByteReader::new(&bad)).is_err());
    }

    #[test]
    fn duplicate_qubits_and_malformed_su4_rejected() {
        // Cx(0, 0) passes the range check but repeats a qubit — it must
        // produce a CodecError, never reach Circuit::from_gates' assert.
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_usize(1);
        write_gate(&mut w, &Gate::Cx(0, 0));
        let bytes = w.into_bytes();
        assert!(read_circuit(&mut ByteReader::new(&bytes)).is_err());
        // An Su4 gate whose matrix is not 4x4 fails at decode time, not
        // later inside embed()/unitary().
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_usize(1);
        w.put_u8(20);
        w.put_usize(0);
        w.put_usize(1);
        reqisc_qmath::bytes::write_cmat(&mut w, &qg::hadamard()); // 2x2
        let bytes = w.into_bytes();
        assert!(read_circuit(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn out_of_range_qubits_rejected() {
        let mut w = ByteWriter::new();
        w.put_usize(2); // width 2...
        w.put_usize(1);
        write_gate(&mut w, &Gate::Cx(0, 5)); // ...but a gate on qubit 5
        let bytes = w.into_bytes();
        assert!(read_circuit(&mut ByteReader::new(&bytes)).is_err());
        // Implausible width.
        let mut w = ByteWriter::new();
        w.put_usize(1 << 20);
        w.put_usize(0);
        let bytes = w.into_bytes();
        assert!(read_circuit(&mut ByteReader::new(&bytes)).is_err());
    }
}
