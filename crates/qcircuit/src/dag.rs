//! Gate dependency DAG.
//!
//! Two gates depend on each other when they share a qubit; the DAG is the
//! transitive structure of those per-qubit chains. Both the routing passes
//! (SABRE's front layer, paper §5.3.2) and the DAG-compacting pass (§5.1.3)
//! are built on this view.

use crate::circuit::Circuit;

/// Dependency DAG over the gate indices of a [`Circuit`].
#[derive(Debug, Clone)]
pub struct Dag {
    /// `preds[i]` = indices of gates that must run before gate `i`.
    preds: Vec<Vec<usize>>,
    /// `succs[i]` = indices of gates that depend on gate `i`.
    succs: Vec<Vec<usize>>,
    num_gates: usize,
}

impl Dag {
    /// Builds the DAG of a circuit from its per-qubit gate chains.
    pub fn build(c: &Circuit) -> Self {
        let n = c.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut last: Vec<Option<usize>> = vec![None; c.num_qubits()];
        for (i, g) in c.gates().iter().enumerate() {
            for q in g.qubits() {
                if let Some(p) = last[q] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last[q] = Some(i);
            }
        }
        Self { preds, succs, num_gates: n }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// Predecessors of gate `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of gate `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Gates whose predecessors are all marked `done` and are not
    /// themselves done — SABRE's *front layer*.
    pub fn front_layer(&self, done: &[bool]) -> Vec<usize> {
        (0..self.num_gates)
            .filter(|&i| !done[i] && self.preds[i].iter().all(|&p| done[p]))
            .collect()
    }

    /// Gates with no *un-done* successor — the "last mapped layer" of
    /// mirroring-SABRE (paper §5.3.2), restricted to done gates.
    pub fn last_layer(&self, done: &[bool]) -> Vec<usize> {
        (0..self.num_gates)
            .filter(|&i| done[i] && self.succs[i].iter().all(|&s| !done[s]))
            .collect()
    }

    /// Groups gate indices into topological layers (gates within a layer
    /// are mutually independent).
    pub fn topo_layers(&self) -> Vec<Vec<usize>> {
        let mut depth = vec![0usize; self.num_gates];
        let mut max_depth = 0;
        for i in 0..self.num_gates {
            // preds always have smaller index than i, so one pass suffices.
            let d = self.preds[i].iter().map(|&p| depth[p] + 1).max().unwrap_or(0);
            depth[i] = d;
            max_depth = max_depth.max(d);
        }
        let mut layers = vec![Vec::new(); max_depth + 1];
        for (i, &d) in depth.iter().enumerate() {
            layers[d].push(i);
        }
        if self.num_gates == 0 {
            layers.clear();
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)); // 0
        c.push(Gate::Cx(0, 1)); // 1 (after 0)
        c.push(Gate::Cx(1, 2)); // 2 (after 1)
        c.push(Gate::X(0)); // 3 (after 1)
        c
    }

    #[test]
    fn structure() {
        let d = Dag::build(&sample());
        assert_eq!(d.preds(0), &[] as &[usize]);
        assert_eq!(d.preds(1), &[0]);
        assert_eq!(d.preds(2), &[1]);
        assert_eq!(d.preds(3), &[1]);
        assert_eq!(d.succs(1), &[2, 3]);
    }

    #[test]
    fn front_layer_advances() {
        let d = Dag::build(&sample());
        let mut done = vec![false; 4];
        assert_eq!(d.front_layer(&done), vec![0]);
        done[0] = true;
        assert_eq!(d.front_layer(&done), vec![1]);
        done[1] = true;
        assert_eq!(d.front_layer(&done), vec![2, 3]);
    }

    #[test]
    fn last_layer_tracks_frontier() {
        let d = Dag::build(&sample());
        let mut done = vec![false; 4];
        done[0] = true;
        done[1] = true;
        // Gate 1 has un-done successors (2, 3) so the last layer is {1}?
        // No: last layer = done gates with *no done successor*.
        assert_eq!(d.last_layer(&done), vec![1]);
        done[2] = true;
        let ll = d.last_layer(&done);
        assert!(ll.contains(&2));
        assert!(!ll.contains(&1));
    }

    #[test]
    fn topo_layers_partition() {
        let d = Dag::build(&sample());
        let layers = d.topo_layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![0]);
        assert_eq!(layers[1], vec![1]);
        assert_eq!(layers[2], vec![2, 3]);
    }

    #[test]
    fn empty_circuit() {
        let d = Dag::build(&Circuit::new(2));
        assert!(d.is_empty());
        assert!(d.topo_layers().is_empty());
    }

    #[test]
    fn duplicate_pred_collapsed() {
        // A gate sharing two qubits with its predecessor lists it once.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 0));
        let d = Dag::build(&c);
        assert_eq!(d.preds(1), &[0]);
    }
}
