//! A compact textual circuit format ("QASM-lite").
//!
//! The artifact of the paper ships benchmark programs as QASM/JSON; this
//! module provides the equivalent serialization for our circuits so bench
//! outputs can be inspected, diffed, and re-loaded.
//!
//! Format: first line `qubits N`, then one gate per line,
//! `name q0 q1 … [params…]`, `#`-prefixed comments allowed.

use crate::circuit::Circuit;
use crate::gate::Gate;
use reqisc_qmath::weyl::WeylCoord;
use std::fmt::Write as _;

/// Serializes a circuit to QASM-lite.
///
/// [`Gate::Su4`] gates are emitted as their 16 complex entries on one line;
/// everything else uses its mnemonic and parameters.
pub fn emit(c: &Circuit) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "qubits {}", c.num_qubits());
    for g in c.gates() {
        match g {
            Gate::Rx(q, t) | Gate::Ry(q, t) | Gate::Rz(q, t) => {
                let _ = writeln!(s, "{} {} {:.17e}", g.name(), q, t);
            }
            Gate::U3(q, t, p, l) => {
                let _ = writeln!(s, "u3 {} {:.17e} {:.17e} {:.17e}", q, t, p, l);
            }
            Gate::Rzz(a, b, t) => {
                let _ = writeln!(s, "rzz {} {} {:.17e}", a, b, t);
            }
            Gate::Can(a, b, w) => {
                let _ = writeln!(s, "can {} {} {:.17e} {:.17e} {:.17e}", a, b, w.x, w.y, w.z);
            }
            Gate::Su4(a, b, m) => {
                let _ = write!(s, "su4 {} {}", a, b);
                for i in 0..4 {
                    for j in 0..4 {
                        let v = m[(i, j)];
                        let _ = write!(s, " {:.17e} {:.17e}", v.re, v.im);
                    }
                }
                let _ = writeln!(s);
            }
            Gate::Mcx(cs, t) => {
                let _ = write!(s, "mcx");
                for q in cs {
                    let _ = write!(s, " {}", q);
                }
                let _ = writeln!(s, " {}", t);
            }
            other => {
                let _ = write!(s, "{}", other.name());
                for q in other.qubits() {
                    let _ = write!(s, " {}", q);
                }
                let _ = writeln!(s);
            }
        }
    }
    s
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQasmError {}

/// Input bounds for [`parse_bounded`] — the service-boundary guard rails.
/// A compile service accepting QASM from untrusted callers must bound
/// what it agrees to *compile*: a 40-qubit header would make the first
/// `unitary()` allocate 2⁸⁰ complex entries. The checks run after the
/// (cheap, gate-list-only) parse, so the raw *input size* must be
/// bounded by the transport — the service caps request lines at
/// `MAX_REQUEST_LINE_BYTES` before any text reaches this function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum accepted `qubits N` header value.
    pub max_qubits: usize,
    /// Maximum accepted gate count.
    pub max_gates: usize,
}

impl Default for ParseLimits {
    /// Generous interactive-service defaults: 16 qubits (the demo suite's
    /// ceiling with headroom), 100k gates.
    fn default() -> Self {
        Self { max_qubits: 16, max_gates: 100_000 }
    }
}

/// [`parse`] with explicit input bounds: rejects (with a line-1 error for
/// the header, or the offending gate's line) instead of building an
/// oversized circuit.
///
/// # Errors
///
/// [`ParseQasmError`] on malformed input or a violated limit.
pub fn parse_bounded(text: &str, limits: &ParseLimits) -> Result<Circuit, ParseQasmError> {
    let c = parse(text)?;
    if c.num_qubits() > limits.max_qubits {
        return Err(ParseQasmError {
            line: 1,
            message: format!(
                "{} qubits exceeds the limit of {}",
                c.num_qubits(),
                limits.max_qubits
            ),
        });
    }
    if c.gates().len() > limits.max_gates {
        return Err(ParseQasmError {
            line: 1,
            message: format!(
                "{} gates exceeds the limit of {}",
                c.gates().len(),
                limits.max_gates
            ),
        });
    }
    Ok(c)
}

/// Parses QASM-lite text produced by [`emit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on malformed headers, unknown mnemonics, or
/// bad operands.
pub fn parse(text: &str) -> Result<Circuit, ParseQasmError> {
    let err = |line: usize, message: &str| ParseQasmError { line, message: message.to_string() };
    let mut lines = text.lines().enumerate();
    let (mut ln, mut header) = (0usize, "");
    for (i, l) in lines.by_ref() {
        let l = l.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        ln = i + 1;
        header = l;
        break;
    }
    let n: usize = header
        .strip_prefix("qubits ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| err(ln, "expected 'qubits N' header"))?;
    let mut c = Circuit::new(n);
    for (i, raw) in lines {
        let line = i + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut tok = l.split_whitespace();
        let name = tok.next().unwrap();
        let rest: Vec<&str> = tok.collect();
        let q = |k: usize| -> Result<usize, ParseQasmError> {
            rest.get(k)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "bad qubit operand"))
        };
        let f = |k: usize| -> Result<f64, ParseQasmError> {
            rest.get(k)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "bad float operand"))
        };
        let g = match name {
            "x" => Gate::X(q(0)?),
            "y" => Gate::Y(q(0)?),
            "z" => Gate::Z(q(0)?),
            "h" => Gate::H(q(0)?),
            "s" => Gate::S(q(0)?),
            "sdg" => Gate::Sdg(q(0)?),
            "t" => Gate::T(q(0)?),
            "tdg" => Gate::Tdg(q(0)?),
            "rx" => Gate::Rx(q(0)?, f(1)?),
            "ry" => Gate::Ry(q(0)?, f(1)?),
            "rz" => Gate::Rz(q(0)?, f(1)?),
            "u3" => Gate::U3(q(0)?, f(1)?, f(2)?, f(3)?),
            "cx" => Gate::Cx(q(0)?, q(1)?),
            "cz" => Gate::Cz(q(0)?, q(1)?),
            "swap" => Gate::Swap(q(0)?, q(1)?),
            "iswap" => Gate::ISwap(q(0)?, q(1)?),
            "sqisw" => Gate::SqiSw(q(0)?, q(1)?),
            "b" => Gate::BGate(q(0)?, q(1)?),
            "rzz" => Gate::Rzz(q(0)?, q(1)?, f(2)?),
            "can" => Gate::Can(q(0)?, q(1)?, WeylCoord::new(f(2)?, f(3)?, f(4)?)),
            "su4" => {
                if rest.len() != 2 + 32 {
                    return Err(err(line, "su4 expects 2 qubits + 32 floats"));
                }
                let mut m = reqisc_qmath::CMat::zeros(4, 4);
                for i2 in 0..4 {
                    for j2 in 0..4 {
                        let base = 2 + 2 * (i2 * 4 + j2);
                        m[(i2, j2)] = reqisc_qmath::C64::new(f(base)?, f(base + 1)?);
                    }
                }
                Gate::Su4(q(0)?, q(1)?, Box::new(m))
            }
            "ccx" => Gate::Ccx(q(0)?, q(1)?, q(2)?),
            "peres" => Gate::Peres(q(0)?, q(1)?, q(2)?),
            "mcx" => {
                if rest.len() < 2 {
                    return Err(err(line, "mcx expects at least control+target"));
                }
                let mut qs = Vec::with_capacity(rest.len());
                for k in 0..rest.len() {
                    qs.push(q(k)?);
                }
                let t = qs.pop().unwrap();
                Gate::Mcx(qs, t)
            }
            other => return Err(err(line, &format!("unknown gate '{other}'"))),
        };
        for qq in g.qubits() {
            if qq >= n {
                return Err(err(line, "qubit index out of range"));
            }
        }
        c.push(g);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates::b_gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::U3(1, 0.1, -0.2, 0.3));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rzz(1, 2, 0.7));
        c.push(Gate::Can(2, 3, WeylCoord::new(0.3, 0.2, -0.1)));
        c.push(Gate::Su4(0, 3, Box::new(b_gate())));
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Mcx(vec![0, 1, 2], 3));
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let text = emit(&c);
        let back = parse(&text).expect("parse");
        assert_eq!(back.num_qubits(), 4);
        assert_eq!(back.len(), c.len());
        // Structural equality gate by gate.
        for (a, b) in c.gates().iter().zip(back.gates()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.qubits(), b.qubits());
        }
        // Unitary equality (captures parameters and matrices exactly).
        assert!(back.unitary().approx_eq(&c.unitary(), 1e-12));
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a comment\n\nqubits 2\n# another\nh 0\ncx 0 1\n";
        let c = parse(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let e = parse("qubits 1\nfrobnicate 0\n").unwrap_err();
        assert!(e.message.contains("unknown gate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(parse("qubits 1\ncx 0 1\n").is_err());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("h 0\n").is_err());
    }
}
