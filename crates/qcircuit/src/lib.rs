#![warn(missing_docs)]
//! # reqisc-qcircuit
//!
//! The circuit intermediate representation of the ReQISC stack: the
//! [`Gate`] set (conventional CNOT-based ISA, the SU(4) ISA `{Can, U3}`, and
//! 3Q/multi-controlled IR primitives), the [`Circuit`] container with
//! lowering and metrics, the dependency [`Dag`], and a compact text format.
//!
//! ## Quick start
//!
//! ```
//! use reqisc_qcircuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::H(0));
//! c.push(Gate::Ccx(0, 1, 2));
//! // Lower the Toffoli for a CNOT-based backend:
//! let lowered = c.lowered_to_cx();
//! assert_eq!(lowered.count_2q(), 6);
//! // ...and the lowering is exact:
//! assert!(lowered.unitary().approx_eq(&c.unitary(), 1e-12));
//! ```

pub mod circuit;
pub mod codec;
pub mod dag;
pub mod gate;
pub mod qasm;

pub use circuit::{embed, Circuit};
pub use codec::{read_circuit, read_gate, write_circuit, write_gate};
pub use dag::Dag;
pub use gate::Gate;
pub use qasm::{emit, parse, parse_bounded, ParseLimits, ParseQasmError};
