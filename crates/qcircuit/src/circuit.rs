//! The circuit container: an ordered gate list over `n` qubits, with
//! lowering (MCX→CCX→CX), metrics, and exact unitary materialization for
//! small registers.

use crate::gate::Gate;
use reqisc_qmath::c64::ONE;
use reqisc_qmath::CMat;
use std::fmt;

/// An ordered sequence of gates on a fixed-width qubit register.
///
/// # Examples
///
/// ```
/// use reqisc_qcircuit::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// assert_eq!(c.count_2q(), 1);
/// assert!(c.unitary().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self { num_qubits, gates: Vec::new() }
    }

    /// Creates a circuit from an existing gate list.
    ///
    /// # Panics
    ///
    /// Panics if any gate touches a qubit `≥ num_qubits`.
    pub fn from_gates(num_qubits: usize, gates: Vec<Gate>) -> Self {
        for g in &gates {
            validate_gate(g, num_qubits);
        }
        Self { num_qubits, gates }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Gate list, in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register or lists
    /// the same qubit twice.
    pub fn push(&mut self, g: Gate) {
        validate_gate(&g, self.num_qubits);
        self.gates.push(g);
    }

    /// Appends every gate of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if the register widths differ.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "register width mismatch");
        self.gates.extend(other.gates.iter().cloned());
    }

    /// Consumes the circuit and returns its gates.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// 128-bit content fingerprint of the program: register width plus
    /// every gate's kind, qubits, and exact parameter bits (explicit
    /// `Su4` matrices hash their entries). Two circuits built by the same
    /// deterministic generator are bitwise-identical and share a
    /// fingerprint — the content-address the compilation cache memoizes
    /// whole-program results under.
    pub fn content_hash(&self) -> u128 {
        let mut h = reqisc_qmath::Fnv128::new();
        h.write_usize(self.num_qubits);
        h.write_usize(self.gates.len());
        for g in &self.gates {
            h.write_str(g.name());
            for q in g.qubits() {
                h.write_usize(q);
            }
            match g {
                Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) | Gate::Rzz(_, _, t) => {
                    h.write_f64(*t);
                }
                Gate::U3(_, t, p, l) => {
                    h.write_f64(*t);
                    h.write_f64(*p);
                    h.write_f64(*l);
                }
                Gate::Can(_, _, w) => {
                    h.write_f64(w.x);
                    h.write_f64(w.y);
                    h.write_f64(w.z);
                }
                Gate::Su4(_, _, m) => {
                    let fp = m.fingerprint();
                    h.write_u64(fp as u64);
                    h.write_u64((fp >> 64) as u64);
                }
                // Parameterless gates are fully captured by name + qubits.
                // Deliberately no catch-all: a future parameterized variant
                // must be added here or this match stops compiling —
                // silently dropping its parameter would alias cache keys.
                Gate::X(_)
                | Gate::Y(_)
                | Gate::Z(_)
                | Gate::H(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Cx(..)
                | Gate::Cz(..)
                | Gate::Swap(..)
                | Gate::ISwap(..)
                | Gate::SqiSw(..)
                | Gate::BGate(..)
                | Gate::Ccx(..)
                | Gate::Peres(..)
                | Gate::Mcx(..) => {}
            }
        }
        h.finish()
    }

    /// Counts gates spanning exactly two qubits.
    pub fn count_2q(&self) -> usize {
        self.gates.iter().filter(|g| g.is_2q()).count()
    }

    /// Counts gates of arity ≥ 2 (2Q plus unlowered CCX/MCX).
    pub fn count_multi(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() >= 2).count()
    }

    /// Two-qubit depth: the length of the longest chain of 2Q gates
    /// (1Q gates are free, matching the paper's `Depth2Q`).
    pub fn depth_2q(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            if g.arity() < 2 {
                continue;
            }
            let qs = g.qubits();
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Critical-path duration under a per-gate duration model.
    ///
    /// `dur(gate)` should return the pulse duration of each gate (typically
    /// `0` for 1Q gates, per the paper's convention that 1Q gates are much
    /// faster than 2Q interactions).
    pub fn duration(&self, dur: &dyn Fn(&Gate) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.num_qubits];
        let mut total = 0.0f64;
        for g in &self.gates {
            let qs = g.qubits();
            let start = qs.iter().map(|&q| finish[q]).fold(0.0, f64::max);
            let end = start + dur(g);
            for q in qs {
                finish[q] = end;
            }
            total = total.max(end);
        }
        total
    }

    /// Lowers every CCX/Peres/MCX into {1Q, CX} gates, leaving other gates
    /// untouched. This is the input form for CNOT-based baselines.
    pub fn lowered_to_cx(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for g in &self.gates {
            lower_gate_to_cx(g, self.num_qubits, &mut out);
        }
        out
    }

    /// Lowers every MCX into CCX gates (the CCX-based IR the ReQISC
    /// compiler consumes, paper §5.2.2), leaving CCX/Peres intact.
    pub fn lowered_to_ccx(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for g in &self.gates {
            match g {
                Gate::Mcx(cs, t) => lower_mcx_to_ccx(cs, *t, self.num_qubits, &mut out),
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// The exact unitary of the circuit (dimension `2^n`), with qubit 0 as
    /// the most significant bit.
    ///
    /// # Panics
    ///
    /// Panics for registers wider than 12 qubits (≈ 16M complex entries);
    /// use the state-vector simulator for larger systems.
    pub fn unitary(&self) -> CMat {
        assert!(
            self.num_qubits <= 12,
            "unitary() materializes 4^n entries; {} qubits is too large",
            self.num_qubits
        );
        let dim = 1usize << self.num_qubits;
        let mut u = CMat::identity(dim);
        for g in &self.gates {
            let gm = embed(&g.matrix(), &g.qubits(), self.num_qubits);
            u = gm.mul_mat(&u);
        }
        u
    }

    /// Applies `perm` to the qubit labels of every gate: qubit `q` becomes
    /// `perm[q]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != num_qubits`.
    pub fn permuted(&self, perm: &[usize]) -> Circuit {
        assert_eq!(perm.len(), self.num_qubits, "permutation width mismatch");
        let gates = self.gates.iter().map(|g| g.remap(&|q| perm[q])).collect();
        Circuit::from_gates(self.num_qubits, gates)
    }

    /// Appends the inverse of the whole circuit (useful for mirror
    /// benchmarking and tests). CCX and self-inverse gates invert in place;
    /// Peres inverts as CX-then-CCX.
    pub fn append_inverse(&mut self) {
        let snapshot: Vec<Gate> = self.gates.clone();
        for g in snapshot.into_iter().rev() {
            match g {
                Gate::Peres(a, b, c) => {
                    self.push(Gate::Cx(a, b));
                    self.push(Gate::Ccx(a, b, c));
                }
                other => self.push(other.dagger()),
            }
        }
    }
}

fn validate_gate(g: &Gate, num_qubits: usize) {
    let qs = g.qubits();
    for (i, &q) in qs.iter().enumerate() {
        assert!(q < num_qubits, "gate {} uses qubit {q} out of range", g.name());
        assert!(!qs[..i].contains(&q), "gate {} repeats qubit {q}", g.name());
    }
}

/// Embeds a `2^k`-dimensional gate matrix acting on `qs` (first listed qubit
/// most significant) into the full `2^n` operator.
pub fn embed(m: &CMat, qs: &[usize], n: usize) -> CMat {
    let k = qs.len();
    assert_eq!(m.rows(), 1 << k, "matrix size does not match qubit count");
    let dim = 1usize << n;
    let mut out = CMat::zeros(dim, dim);
    // Positions (bit shifts) of the gate qubits, MSB-first indexing.
    let shifts: Vec<usize> = qs.iter().map(|&q| n - 1 - q).collect();
    let rest: Vec<usize> = (0..n).filter(|b| !qs.contains(b)).map(|q| n - 1 - q).collect();
    let rcount = 1usize << rest.len();
    for ctx in 0..rcount {
        // Scatter the context bits into their positions.
        let mut base = 0usize;
        for (bi, &sh) in rest.iter().enumerate() {
            if (ctx >> bi) & 1 == 1 {
                base |= 1 << sh;
            }
        }
        for i in 0..(1 << k) {
            let mut row = base;
            for (bi, &sh) in shifts.iter().enumerate() {
                if (i >> (k - 1 - bi)) & 1 == 1 {
                    row |= 1 << sh;
                }
            }
            for j in 0..(1 << k) {
                let v = m[(i, j)];
                if v.re == 0.0 && v.im == 0.0 {
                    continue;
                }
                let mut col = base;
                for (bi, &sh) in shifts.iter().enumerate() {
                    if (j >> (k - 1 - bi)) & 1 == 1 {
                        col |= 1 << sh;
                    }
                }
                out[(row, col)] = v;
            }
        }
    }
    out
}

fn lower_gate_to_cx(g: &Gate, n: usize, out: &mut Circuit) {
    match g {
        Gate::Rzz(a, b, t) => {
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Rz(*b, *t));
            out.push(Gate::Cx(*a, *b));
        }
        Gate::Swap(a, b) => {
            out.push(Gate::Cx(*a, *b));
            out.push(Gate::Cx(*b, *a));
            out.push(Gate::Cx(*a, *b));
        }
        Gate::Ccx(a, b, c) => lower_ccx(*a, *b, *c, out),
        Gate::Peres(a, b, c) => {
            lower_ccx(*a, *b, *c, out);
            out.push(Gate::Cx(*a, *b));
        }
        Gate::Mcx(cs, t) => {
            let mut tmp = Circuit::new(n);
            lower_mcx_to_ccx(cs, *t, n, &mut tmp);
            for g2 in tmp.into_gates() {
                lower_gate_to_cx(&g2, n, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Standard 6-CNOT, 7-T Toffoli decomposition.
fn lower_ccx(a: usize, b: usize, c: usize, out: &mut Circuit) {
    use Gate::*;
    out.push(H(c));
    out.push(Cx(b, c));
    out.push(Tdg(c));
    out.push(Cx(a, c));
    out.push(T(c));
    out.push(Cx(b, c));
    out.push(Tdg(c));
    out.push(Cx(a, c));
    out.push(T(b));
    out.push(T(c));
    out.push(H(c));
    out.push(Cx(a, b));
    out.push(T(a));
    out.push(Tdg(b));
    out.push(Cx(a, b));
}

/// Recursive MCX lowering (paper §5.2.1 cites Barenco et al. [5]).
///
/// Uses the V-chain with dirty ancillas drawn from idle register qubits; the
/// caller's register must have at least `controls - 2` idle qubits for
/// `controls ≥ 3` (our benchmark generators always allocate them).
fn lower_mcx_to_ccx(cs: &[usize], t: usize, n: usize, out: &mut Circuit) {
    match cs.len() {
        0 => out.push(Gate::X(t)),
        1 => out.push(Gate::Cx(cs[0], t)),
        2 => out.push(Gate::Ccx(cs[0], cs[1], t)),
        k => {
            // Find dirty ancillas: any qubits not in {cs, t}.
            let used: Vec<usize> = cs.iter().copied().chain([t]).collect();
            let anc: Vec<usize> = (0..n).filter(|q| !used.contains(q)).collect();
            assert!(
                anc.len() >= k - 2,
                "MCX with {k} controls needs {} ancillas, register has {}",
                k - 2,
                anc.len()
            );
            // Barenco dirty-ancilla V-chain: the "inner" block XORs
            // c₀c₁…c_{k-2} into the top ancilla; bracketing it with two
            // target CCXs makes the garbage terms cancel, and repeating the
            // inner block restores every ancilla.
            let inner = |out: &mut Circuit| {
                for i in (2..=k - 2).rev() {
                    out.push(Gate::Ccx(cs[i], anc[i - 2], anc[i - 1]));
                }
                out.push(Gate::Ccx(cs[0], cs[1], anc[0]));
                for i in 2..=k - 2 {
                    out.push(Gate::Ccx(cs[i], anc[i - 2], anc[i - 1]));
                }
            };
            out.push(Gate::Ccx(cs[k - 1], anc[k - 3], t));
            inner(out);
            out.push(Gate::Ccx(cs[k - 1], anc[k - 3], t));
            inner(out);
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits, {} gates]", self.num_qubits, self.gates.len())?;
        for g in &self.gates {
            writeln!(f, "  {} {:?}", g.name(), g.qubits())?;
        }
        Ok(())
    }
}

const _: reqisc_qmath::C64 = ONE;

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::gates as qg;
    use reqisc_qmath::weyl::WeylCoord;

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let u = c.unitary();
        // |00> -> (|00> + |11>)/√2
        assert!((u[(0, 0)].re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((u[(3, 0)].re - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!(u[(1, 0)].abs() < 1e-12);
    }

    #[test]
    fn embed_respects_qubit_order() {
        // CX with control = qubit 1, target = qubit 0 in a 2-qubit register.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(1, 0));
        let u = c.unitary();
        // |01> (q0=0, q1=1) -> |11>
        assert!((u[(3, 1)].re - 1.0).abs() < 1e-12);
        assert!((u[(1, 3)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn embed_middle_qubits() {
        // CX(2,1) in a 3-qubit register: |0;q1=0;q2=1> = idx1 -> |0;1;1> = 3.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(2, 1));
        let u = c.unitary();
        assert!((u[(3, 1)].re - 1.0).abs() < 1e-12);
        assert!((u[(7, 5)].re - 1.0).abs() < 1e-12);
        assert!((u[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccx_lowering_is_exact() {
        let mut hi = Circuit::new(3);
        hi.push(Gate::Ccx(0, 1, 2));
        let lo = hi.lowered_to_cx();
        assert_eq!(lo.count_2q(), 6);
        assert!(lo.unitary().approx_eq(&hi.unitary(), 1e-12));
    }

    #[test]
    fn peres_lowering_is_exact() {
        let mut hi = Circuit::new(3);
        hi.push(Gate::Peres(0, 1, 2));
        let lo = hi.lowered_to_cx();
        assert!(lo.unitary().approx_eq(&hi.unitary(), 1e-12));
    }

    #[test]
    fn mcx_lowering_matches_permutation() {
        // 3 controls + target + 1 ancilla = 5 qubits.
        let mut hi = Circuit::new(5);
        hi.push(Gate::Mcx(vec![0, 1, 2], 3));
        let ccx = hi.lowered_to_ccx();
        assert!(ccx.gates().iter().all(|g| matches!(g, Gate::Ccx(..))));
        assert!(ccx.unitary().approx_eq(&hi.unitary(), 1e-10));
        let cx = hi.lowered_to_cx();
        assert!(cx.unitary().approx_eq(&hi.unitary(), 1e-10));
    }

    #[test]
    fn mcx_lowering_with_dirty_ancilla() {
        // The ancilla (qubit 4) starts in superposition — verify the V-chain
        // restores it: compare full unitaries (which covers all ancilla
        // states by linearity).
        let mut hi = Circuit::new(7);
        hi.push(Gate::Mcx(vec![0, 1, 2, 3], 4));
        let lo = hi.lowered_to_ccx();
        assert!(lo.unitary().approx_eq(&hi.unitary(), 1e-10));
    }

    #[test]
    fn mcx_five_controls() {
        // 5 controls, target, 3 dirty ancillas = 9 qubits; compare action on
        // the all-ones control pattern via the permutation structure.
        let mut hi = Circuit::new(9);
        hi.push(Gate::Mcx(vec![0, 1, 2, 3, 4], 5));
        let lo = hi.lowered_to_ccx();
        // Count: 2 target CCX + 2 inner blocks of (2(k-3)+1) = 2 + 2*5 = 12.
        assert_eq!(lo.len(), 12);
        // Spot-check as a permutation on computational basis states without
        // materializing the 512x512 unitary twice: apply gate-by-gate to
        // basis kets using the CCX truth table.
        let apply = |c: &Circuit, mut state: usize| -> usize {
            for g in c.gates() {
                if let Gate::Ccx(a, b, t) = g {
                    let (ba, bb) = (8 - a, 8 - b);
                    let bt = 8 - t;
                    if (state >> ba) & 1 == 1 && (state >> bb) & 1 == 1 {
                        state ^= 1 << bt;
                    }
                }
            }
            state
        };
        for pattern in [0usize, 0b111110000, 0b111111000, 0b101010000, 0b111110110] {
            let want = if (pattern >> 4) & 0b11111 == 0b11111 {
                pattern ^ (1 << 3)
            } else {
                pattern
            };
            assert_eq!(apply(&lo, pattern), want, "pattern {pattern:b}");
        }
    }

    #[test]
    fn depth_and_counts() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1)); // depth 1
        c.push(Gate::Cx(1, 2)); // depth 2
        c.push(Gate::Cx(0, 1)); // depth 3 (shares qubit 1)
        assert_eq!(c.count_2q(), 3);
        assert_eq!(c.depth_2q(), 3);
    }

    #[test]
    fn parallel_gates_share_depth() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        assert_eq!(c.depth_2q(), 1);
    }

    #[test]
    fn duration_critical_path() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
        let d = c.duration(&|g| if g.is_2q() { 2.0 } else { 0.0 });
        assert!((d - 6.0).abs() < 1e-12);
        // Parallel pair takes one slot.
        let mut p = Circuit::new(4);
        p.push(Gate::Cx(0, 1));
        p.push(Gate::Cx(2, 3));
        assert!((p.duration(&|_| 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn append_inverse_gives_identity() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::T(1));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Can(1, 2, WeylCoord::new(0.3, 0.1, 0.05)));
        c.push(Gate::Ccx(0, 1, 2));
        c.append_inverse();
        assert!(c.unitary().approx_eq(&CMat::identity(8), 1e-10));
    }

    #[test]
    fn permuted_relabels() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        let p = c.permuted(&[2, 0, 1]);
        assert_eq!(p.gates()[0], Gate::Cx(2, 0));
    }

    #[test]
    fn su4_gate_in_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::Su4(0, 1, Box::new(qg::b_gate())));
        assert!(c.unitary().approx_eq(&qg::b_gate(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 2));
    }

    #[test]
    fn content_hash_distinguishes_programs() {
        let mut a = Circuit::new(3);
        a.push(Gate::Ccx(0, 1, 2));
        a.push(Gate::Rz(0, 0.25));
        let mut b = Circuit::new(3);
        b.push(Gate::Ccx(0, 1, 2));
        b.push(Gate::Rz(0, 0.25));
        assert_eq!(a.content_hash(), b.content_hash());
        // Parameter, qubit, order, and width changes all change the hash.
        let mut c = Circuit::new(3);
        c.push(Gate::Ccx(0, 1, 2));
        c.push(Gate::Rz(0, 0.26));
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = Circuit::new(3);
        d.push(Gate::Rz(0, 0.25));
        d.push(Gate::Ccx(0, 1, 2));
        assert_ne!(a.content_hash(), d.content_hash());
        assert_ne!(a.content_hash(), Circuit::new(3).content_hash());
        assert_ne!(Circuit::new(2).content_hash(), Circuit::new(3).content_hash());
        // Su4 payloads participate in the hash.
        let mut e = Circuit::new(2);
        e.push(Gate::Su4(0, 1, Box::new(qg::b_gate())));
        let mut f = Circuit::new(2);
        f.push(Gate::Su4(0, 1, Box::new(qg::cnot())));
        assert_ne!(e.content_hash(), f.content_hash());
    }
}
