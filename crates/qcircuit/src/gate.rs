//! The gate set of the ReQISC stack.
//!
//! Covers the conventional CNOT-based ISA (what baselines consume), the
//! SU(4)-based ISA `{Can(x,y,z), U3(θ,φ,λ)}` that the ReQISC compiler
//! emits (paper Fig. 2), and the 3Q/multi-controlled primitives that appear
//! in the high-level IRs of Type-I programs (CCX, Peres, MCX).

use reqisc_qmath::gates as g;
use reqisc_qmath::weyl::WeylCoord;
use reqisc_qmath::{kak_decompose, CMat};

/// A quantum gate instance bound to qubit indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Pauli-X on one qubit.
    X(usize),
    /// Pauli-Y on one qubit.
    Y(usize),
    /// Pauli-Z on one qubit.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate S.
    S(usize),
    /// S†.
    Sdg(usize),
    /// T gate.
    T(usize),
    /// T†.
    Tdg(usize),
    /// X rotation by an angle.
    Rx(usize, f64),
    /// Y rotation by an angle.
    Ry(usize, f64),
    /// Z rotation by an angle.
    Rz(usize, f64),
    /// Generic 1Q gate `U3(θ, φ, λ)`.
    U3(usize, f64, f64, f64),
    /// CNOT with `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP.
    Swap(usize, usize),
    /// iSWAP.
    ISwap(usize, usize),
    /// √iSWAP.
    SqiSw(usize, usize),
    /// The B gate.
    BGate(usize, usize),
    /// `exp(-i θ/2 · ZZ)` — the native block of QAOA / Hamiltonian programs.
    Rzz(usize, usize, f64),
    /// Canonical gate `Can(x, y, z)` on a qubit pair (SU(4) ISA).
    Can(usize, usize, WeylCoord),
    /// An arbitrary fused two-qubit unitary (SU(4) ISA, explicit matrix).
    Su4(usize, usize, Box<CMat>),
    /// Toffoli with `(control, control, target)`.
    Ccx(usize, usize, usize),
    /// Peres gate `(a, b, c)`: CCX(a,b,c) followed by CX(a,b).
    Peres(usize, usize, usize),
    /// Multi-controlled X: `controls → target`.
    Mcx(Vec<usize>, usize),
}

impl Gate {
    /// The qubits this gate touches, in gate-local order.
    pub fn qubits(&self) -> Vec<usize> {
        use Gate::*;
        match self {
            X(q) | Y(q) | Z(q) | H(q) | S(q) | Sdg(q) | T(q) | Tdg(q) | Rx(q, _) | Ry(q, _)
            | Rz(q, _) | U3(q, _, _, _) => vec![*q],
            Cx(a, b) | Cz(a, b) | Swap(a, b) | ISwap(a, b) | SqiSw(a, b) | BGate(a, b)
            | Rzz(a, b, _) | Can(a, b, _) | Su4(a, b, _) => vec![*a, *b],
            Ccx(a, b, c) | Peres(a, b, c) => vec![*a, *b, *c],
            Mcx(cs, t) => {
                let mut qs = cs.clone();
                qs.push(*t);
                qs
            }
        }
    }

    /// Number of qubits the gate spans.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// True for single-qubit gates.
    pub fn is_1q(&self) -> bool {
        self.arity() == 1
    }

    /// True for two-qubit gates.
    pub fn is_2q(&self) -> bool {
        self.arity() == 2
    }

    /// Short mnemonic, e.g. `"cx"` or `"can"`.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            H(_) => "h",
            S(_) => "s",
            Sdg(_) => "sdg",
            T(_) => "t",
            Tdg(_) => "tdg",
            Rx(..) => "rx",
            Ry(..) => "ry",
            Rz(..) => "rz",
            U3(..) => "u3",
            Cx(..) => "cx",
            Cz(..) => "cz",
            Swap(..) => "swap",
            ISwap(..) => "iswap",
            SqiSw(..) => "sqisw",
            BGate(..) => "b",
            Rzz(..) => "rzz",
            Can(..) => "can",
            Su4(..) => "su4",
            Ccx(..) => "ccx",
            Peres(..) => "peres",
            Mcx(..) => "mcx",
        }
    }

    /// The gate's unitary on its own qubits (dimension `2^arity`), with the
    /// first listed qubit as the most significant index.
    ///
    /// # Panics
    ///
    /// Panics for [`Gate::Mcx`] with more than 8 controls (use
    /// `Circuit::lowered` first — MCX is an IR-level construct).
    pub fn matrix(&self) -> CMat {
        use Gate::*;
        match self {
            X(_) => g::pauli_x(),
            Y(_) => g::pauli_y(),
            Z(_) => g::pauli_z(),
            H(_) => g::hadamard(),
            S(_) => g::s_gate(),
            Sdg(_) => g::sdg_gate(),
            T(_) => g::t_gate(),
            Tdg(_) => g::tdg_gate(),
            Rx(_, t) => g::rx(*t),
            Ry(_, t) => g::ry(*t),
            Rz(_, t) => g::rz(*t),
            U3(_, t, p, l) => g::u3(*t, *p, *l),
            Cx(..) => g::cnot(),
            Cz(..) => g::cz(),
            Swap(..) => g::swap(),
            ISwap(..) => g::iswap(),
            SqiSw(..) => g::sqisw(),
            BGate(..) => g::b_gate(),
            Rzz(_, _, t) => {
                // exp(-i θ/2 ZZ) = diag(e^{-iθ/2}, e^{iθ/2}, e^{iθ/2}, e^{-iθ/2})
                let h = *t / 2.0;
                CMat::diag(&[
                    reqisc_qmath::C64::cis(-h),
                    reqisc_qmath::C64::cis(h),
                    reqisc_qmath::C64::cis(h),
                    reqisc_qmath::C64::cis(-h),
                ])
            }
            Can(_, _, c) => g::canonical_gate(c.x, c.y, c.z),
            Su4(_, _, m) => (**m).clone(),
            Ccx(..) => {
                let mut m = CMat::identity(8);
                m.swap_rows(6, 7);
                m
            }
            Peres(..) => {
                // CCX then CX(a→b): permutation |a b c> → |a, a⊕b, ab⊕c>
                let mut m = CMat::zeros(8, 8);
                for a in 0..2usize {
                    for b in 0..2usize {
                        for c in 0..2usize {
                            let src = (a << 2) | (b << 1) | c;
                            let dst = (a << 2) | ((a ^ b) << 1) | ((a & b) ^ c);
                            m[(dst, src)] = reqisc_qmath::c64::ONE;
                        }
                    }
                }
                m
            }
            Mcx(cs, _) => {
                let k = cs.len();
                assert!(k <= 8, "MCX matrix only materialized up to 8 controls");
                let n = 1usize << (k + 1);
                let mut m = CMat::identity(n);
                m.swap_rows(n - 2, n - 1);
                m
            }
        }
    }

    /// Weyl coordinates of a two-qubit gate, `None` for other arities.
    pub fn weyl(&self) -> Option<WeylCoord> {
        use Gate::*;
        match self {
            Cx(..) | Cz(..) => Some(WeylCoord::cnot()),
            Swap(..) => Some(WeylCoord::swap()),
            ISwap(..) => Some(WeylCoord::iswap()),
            SqiSw(..) => Some(WeylCoord::sqisw()),
            BGate(..) => Some(WeylCoord::b_gate()),
            Rzz(..) => kak_decompose(&self.matrix()).ok().map(|k| k.coords),
            Can(_, _, c) => Some(*c),
            Su4(_, _, m) => kak_decompose(m).ok().map(|k| k.coords),
            _ => None,
        }
    }

    /// Rewrites qubit indices through a mapping function.
    pub fn remap(&self, f: &dyn Fn(usize) -> usize) -> Gate {
        use Gate::*;
        match self {
            X(q) => X(f(*q)),
            Y(q) => Y(f(*q)),
            Z(q) => Z(f(*q)),
            H(q) => H(f(*q)),
            S(q) => S(f(*q)),
            Sdg(q) => Sdg(f(*q)),
            T(q) => T(f(*q)),
            Tdg(q) => Tdg(f(*q)),
            Rx(q, t) => Rx(f(*q), *t),
            Ry(q, t) => Ry(f(*q), *t),
            Rz(q, t) => Rz(f(*q), *t),
            U3(q, t, p, l) => U3(f(*q), *t, *p, *l),
            Cx(a, b) => Cx(f(*a), f(*b)),
            Cz(a, b) => Cz(f(*a), f(*b)),
            Swap(a, b) => Swap(f(*a), f(*b)),
            ISwap(a, b) => ISwap(f(*a), f(*b)),
            SqiSw(a, b) => SqiSw(f(*a), f(*b)),
            BGate(a, b) => BGate(f(*a), f(*b)),
            Rzz(a, b, t) => Rzz(f(*a), f(*b), *t),
            Can(a, b, c) => Can(f(*a), f(*b), *c),
            Su4(a, b, m) => Su4(f(*a), f(*b), m.clone()),
            Ccx(a, b, c) => Ccx(f(*a), f(*b), f(*c)),
            Peres(a, b, c) => Peres(f(*a), f(*b), f(*c)),
            Mcx(cs, t) => Mcx(cs.iter().map(|&q| f(q)).collect(), f(*t)),
        }
    }

    /// Inverse gate.
    ///
    /// # Panics
    ///
    /// Panics for [`Gate::Peres`], which has no single-gate inverse in this
    /// set — invert it at the circuit level as `CX(a,b)` then `CCX(a,b,c)`.
    pub fn dagger(&self) -> Gate {
        use Gate::*;
        match self {
            S(q) => Sdg(*q),
            Sdg(q) => S(*q),
            T(q) => Tdg(*q),
            Tdg(q) => T(*q),
            Rx(q, t) => Rx(*q, -t),
            Ry(q, t) => Ry(*q, -t),
            Rz(q, t) => Rz(*q, -t),
            U3(q, t, p, l) => U3(*q, -*t, -*l, -*p),
            Rzz(a, b, t) => Rzz(*a, *b, -*t),
            ISwap(a, b) => Su4(*a, *b, Box::new(g::iswap().adjoint())),
            SqiSw(a, b) => Su4(*a, *b, Box::new(g::sqisw().adjoint())),
            BGate(a, b) => Su4(*a, *b, Box::new(g::b_gate().adjoint())),
            Can(a, b, c) => Su4(*a, *b, Box::new(g::canonical_gate(c.x, c.y, c.z).adjoint())),
            Su4(a, b, m) => Su4(*a, *b, Box::new(m.adjoint())),
            Peres(..) => unimplemented!("invert Peres at the circuit level (CX then CCX)"),
            other => other.clone(), // self-inverse gates
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqisc_qmath::weyl::WeylCoord;

    #[test]
    fn arities() {
        assert_eq!(Gate::H(0).arity(), 1);
        assert_eq!(Gate::Cx(0, 1).arity(), 2);
        assert_eq!(Gate::Ccx(0, 1, 2).arity(), 3);
        assert_eq!(Gate::Mcx(vec![0, 1, 2], 3).arity(), 4);
    }

    #[test]
    fn matrices_are_unitary() {
        let gates = vec![
            Gate::X(0),
            Gate::H(0),
            Gate::T(0),
            Gate::Rx(0, 0.3),
            Gate::U3(0, 0.1, 0.2, 0.3),
            Gate::Cx(0, 1),
            Gate::Rzz(0, 1, 0.7),
            Gate::Can(0, 1, WeylCoord::new(0.2, 0.1, 0.05)),
            Gate::Ccx(0, 1, 2),
            Gate::Peres(0, 1, 2),
            Gate::Mcx(vec![0, 1, 2], 3),
        ];
        for gate in gates {
            assert!(gate.matrix().is_unitary(1e-12), "{} not unitary", gate.name());
        }
    }

    #[test]
    fn ccx_is_permutation() {
        let m = Gate::Ccx(0, 1, 2).matrix();
        // |110> -> |111>
        assert!((m[(7, 6)].re - 1.0).abs() < 1e-15);
        assert!((m[(6, 7)].re - 1.0).abs() < 1e-15);
        assert!((m[(5, 5)].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn peres_truth_table() {
        let m = Gate::Peres(0, 1, 2).matrix();
        // |1,0,0> (= index 4) -> a=1, b=a⊕b=1, c=ab⊕c=0 -> |1,1,0> (= 6)
        assert!((m[(6, 4)].re - 1.0).abs() < 1e-15);
        // |1,1,0> (6) -> b = 0, c = 1⊕0=1 -> |1,0,1> (5)
        assert!((m[(5, 6)].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn weyl_of_named_gates() {
        assert!(Gate::Cx(0, 1).weyl().unwrap().approx_eq(&WeylCoord::cnot(), 1e-12));
        assert!(Gate::Swap(0, 1).weyl().unwrap().approx_eq(&WeylCoord::swap(), 1e-12));
        assert!(Gate::Rzz(0, 1, std::f64::consts::FRAC_PI_2)
            .weyl()
            .unwrap()
            .approx_eq(&WeylCoord::cnot(), 1e-8));
        assert!(Gate::H(0).weyl().is_none());
    }

    #[test]
    fn remap_moves_qubits() {
        let g = Gate::Ccx(0, 1, 2).remap(&|q| q + 3);
        assert_eq!(g.qubits(), vec![3, 4, 5]);
    }

    #[test]
    fn dagger_composes_to_identity() {
        for gate in [
            Gate::S(0),
            Gate::T(0),
            Gate::Rz(0, 0.4),
            Gate::U3(0, 0.3, 0.7, -0.2),
        ] {
            let u = gate.matrix();
            let v = gate.dagger().matrix();
            assert!(
                u.mul_mat(&v).approx_eq(&reqisc_qmath::CMat::identity(2), 1e-12),
                "{} dagger wrong",
                gate.name()
            );
        }
        let g2 = Gate::Can(0, 1, WeylCoord::new(0.3, 0.2, 0.1));
        let u = g2.matrix();
        let v = g2.dagger().matrix();
        assert!(u.mul_mat(&v).approx_eq(&reqisc_qmath::CMat::identity(4), 1e-12));
    }
}
