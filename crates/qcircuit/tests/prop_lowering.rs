//! Property tests: gate lowering and embedding are exact on random
//! circuits, cross-checked between the dense embedding and the
//! state-vector simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reqisc_qcircuit::{Circuit, Gate};
use reqisc_qsim::{circuit_unitary, process_infidelity, StateVector};

fn random_high_level(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..6) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => {
                let (a, b) = pick2(&mut rng, n);
                c.push(Gate::Rzz(a, b, 0.7));
            }
            2 => {
                let (a, b) = pick2(&mut rng, n);
                c.push(Gate::Swap(a, b));
            }
            3 if n >= 3 => {
                let qs = pick3(&mut rng, n);
                c.push(Gate::Ccx(qs[0], qs[1], qs[2]));
            }
            4 if n >= 3 => {
                let qs = pick3(&mut rng, n);
                c.push(Gate::Peres(qs[0], qs[1], qs[2]));
            }
            _ => {
                let (a, b) = pick2(&mut rng, n);
                c.push(Gate::Cx(a, b));
            }
        }
    }
    c
}

fn pick2(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n);
    while b == a {
        b = rng.gen_range(0..n);
    }
    (a, b)
}

fn pick3(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut qs: Vec<usize> = (0..n).collect();
    for i in 0..3 {
        let j = rng.gen_range(i..n);
        qs.swap(i, j);
    }
    qs.truncate(3);
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// lowered_to_cx is exactly the original circuit.
    #[test]
    fn lowering_is_exact(seed in 0u64..5000, n in 3usize..6, len in 2usize..12) {
        let c = random_high_level(n, len, seed);
        let lo = c.lowered_to_cx();
        prop_assert!(lo.gates().iter().all(|g| g.arity() <= 2));
        let inf = process_infidelity(&circuit_unitary(&c), &circuit_unitary(&lo));
        prop_assert!(inf < 1e-9, "infidelity {inf}");
    }

    /// Dense unitary() and the column-wise state-vector unitary agree.
    #[test]
    fn unitary_matches_statevector(seed in 0u64..5000, n in 2usize..5, len in 2usize..10) {
        let c = random_high_level(n, len, seed);
        let dense = c.unitary();
        let fast = circuit_unitary(&c);
        prop_assert!(dense.approx_eq(&fast, 1e-10));
    }

    /// Running a circuit then its inverse restores any basis state.
    #[test]
    fn inverse_restores_state(seed in 0u64..5000, n in 2usize..5, len in 2usize..10, idx_f in 0.0f64..1.0) {
        let mut c = random_high_level(n, len, seed);
        c.append_inverse();
        let idx = ((1usize << n) as f64 * idx_f) as usize % (1 << n);
        let mut sv = StateVector::basis(n, idx);
        sv.run(&c);
        let p = sv.probabilities();
        prop_assert!((p[idx] - 1.0).abs() < 1e-9, "state leaked: p = {}", p[idx]);
    }

    /// QASM-lite round-trips preserve the unitary.
    #[test]
    fn qasm_roundtrip(seed in 0u64..5000, n in 2usize..5, len in 2usize..10) {
        let c = random_high_level(n, len, seed);
        let back = reqisc_qcircuit::parse(&reqisc_qcircuit::emit(&c)).unwrap();
        let inf = process_infidelity(&circuit_unitary(&c), &circuit_unitary(&back));
        prop_assert!(inf < 1e-10);
    }
}
