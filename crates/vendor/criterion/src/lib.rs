#![warn(missing_docs)]
//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements just the API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a simple calibrated loop: each benchmark runs for a fixed
//! wall-clock budget and reports mean ns/iter. No statistics, plots, or
//! baselines — good enough to smoke-run kernels and compare orders of
//! magnitude; swap in the real criterion when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget each benchmark target is measured for.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Entry point handed to benchmark functions (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is time-budgeted,
    /// so the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, &mut f);
        self
    }

    /// Runs a named benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&full, &mut g);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`] (so `&str` works where ids are taken).
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Per-benchmark timing driver (subset of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly for the measurement budget, recording mean time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(f());
            n += 1;
            if (n >= 10 && start.elapsed() >= MEASURE_BUDGET) || n >= 100_000_000 {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<48} (no iterations recorded)");
    } else {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{id:<48} {ns:>14.1} ns/iter ({} iters)", b.iters);
    }
}

/// Declares a group function running each target (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
