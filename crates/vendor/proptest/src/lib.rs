#![warn(missing_docs)]
//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset the workspace's property tests use: range and
//! tuple [`Strategy`]s, [`Strategy::prop_map`], [`ProptestConfig`], the
//! [`proptest!`] macro, and `prop_assert!`/`prop_assume!`.
//!
//! Semantics vs the real crate: cases are generated from a deterministic
//! per-case seed (fully reproducible, no persistence file), failures panic
//! via `assert!` with no shrinking, and `prop_assume!` skips the case
//! without replacement. That is enough to exercise the invariants; swap in
//! the real proptest for shrinking once network access is available.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestRunner,
    };
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..8)` — a vector of 1–7 generated elements,
    /// mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives a property over randomly generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `cases` deterministic random values of `strategy`.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value),
    {
        for case in 0..self.config.cases {
            // Deterministic per-case seed: reproducible runs, distinct cases.
            let mut rng =
                StdRng::seed_from_u64(0x5EED_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            test(strategy.generate(&mut rng));
        }
    }
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }` items
/// become `#[test]` functions run over random cases (subset of proptest's
/// macro; the leading `#![proptest_config(..)]` attribute is optional).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(&( $($strat,)+ ), |( $($arg,)+ )| $body);
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, 1.0f64..2.0).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(x in 0u64..100, f in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// prop_map runs and prop_assume skips.
        #[test]
        fn map_and_assume(p in arb_pair(), n in 1usize..10) {
            prop_assume!(n != 5);
            prop_assert!(p.0 < p.1, "pair out of order: {p:?}");
            prop_assert_eq!(n, n);
        }
    }
}
