#![warn(missing_docs)]
//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! instead of the real `rand` we vendor the tiny API subset the stack
//! actually uses (the 0.8-era spelling):
//!
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive),
//! * [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — implemented as xoshiro256\*\* seeded through
//!   SplitMix64, which is more than adequate statistically for the
//!   Haar-sampling and property tests in this workspace.
//!
//! Everything is deterministic given the seed; there is no OS entropy
//! source on purpose (all call sites seed explicitly).

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator seedable from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn dyn_rng_is_object_safe_enough() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        takes_dyn(&mut rng);
    }
}
