#![warn(missing_docs)]
//! # reqisc
//!
//! Facade crate for the ReQISC reproduction: re-exports the full stack so
//! downstream users (and the `examples/`) can depend on a single crate.
//!
//! * [`qmath`] — linear algebra, KAK decomposition, Weyl chamber.
//! * [`qcircuit`] — gates, circuits, DAGs.
//! * [`qsim`] — state-vector and noisy simulation.
//! * [`microarch`] — the genAshN gate scheme (paper §4 / Algorithm 1).
//! * [`synthesis`] — approximate synthesis and the 3Q template library.
//! * [`compiler`] — the Regulus compiler pipelines and baselines.
//! * [`benchsuite`] — the 17-category benchmark generators (Table 1).

pub use reqisc_benchsuite as benchsuite;
pub use reqisc_compiler as compiler;
pub use reqisc_microarch as microarch;
pub use reqisc_qcircuit as qcircuit;
pub use reqisc_qmath as qmath;
pub use reqisc_qsim as qsim;
pub use reqisc_synthesis as synthesis;
